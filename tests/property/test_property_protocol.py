"""Property-based end-to-end invariants of whole simulations.

Heavier than the other property tests (each example runs a miniature
simulation), so example counts are tuned down.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.metrics.disorder import global_disorder
from tests.conftest import make_ordering_sim, make_ranking_sim


class TestSimulationInvariants:
    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=60),
        slice_count=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_ordering_conserves_value_multiset(self, n, slice_count, seed):
        sim = make_ordering_sim(n=n, slice_count=slice_count, view_size=4, seed=seed)
        before = sorted(node.value for node in sim.live_nodes())
        sim.run(8)
        after = sorted(node.value for node in sim.live_nodes())
        assert before == after

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=60),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_ordering_never_increases_total_inversions(self, n, seed):
        # Classic sorting invariant: every predicate-verified swap of a
        # misplaced pair strictly reduces the total inversion count, so
        # without concurrency the count is monotone non-increasing.
        sim = make_ordering_sim(n=n, view_size=4, seed=seed)

        def total_inversions():
            nodes = sorted(
                sim.live_nodes(), key=lambda node: (node.attribute, node.node_id)
            )
            values = [node.value for node in nodes]
            return sum(
                1
                for i in range(len(values))
                for j in range(i + 1, len(values))
                if values[i] > values[j]
            )

        previous = total_inversions()
        for _ in range(6):
            sim.run_cycle()
            current = total_inversions()
            assert current <= previous
            previous = current

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=4, max_value=60),
        window=st.one_of(st.none(), st.integers(min_value=10, max_value=500)),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_ranking_estimates_always_valid(self, n, window, seed):
        sim = make_ranking_sim(n=n, view_size=4, window=window, seed=seed)
        sim.run(8)
        for node in sim.live_nodes():
            assert 0.0 <= node.value <= 1.0
            assert 0 <= node.slice_index < len(sim.partition)

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_gdm_trend_downward(self, seed):
        sim = make_ordering_sim(n=50, view_size=6, seed=seed)
        start = global_disorder(sim.live_nodes())
        sim.run(25)
        end = global_disorder(sim.live_nodes())
        assert end <= start
