"""Unit tests for the benchmark regression gate
(``benchmarks/check_regression.py``) — the comparison logic the
nightly CI job enforces."""

import importlib.util
import json
import os

import pytest

_GATE_PATH = os.path.join(
    os.path.dirname(__file__), "..", "..", "benchmarks", "check_regression.py"
)


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location(
        "check_regression", os.path.abspath(_GATE_PATH)
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestFlatten:
    def test_nested_structures_and_identity_labels(self, gate):
        data = [
            {
                "benchmark": "scaling",
                "n": 1000,
                "vectorized_cps": 2.0,
                "sharded_cps": {"1": 1.5, "2": 2.5},
                "cores": 8,  # not a metric
                "ladder": [
                    {"workers": 2, "rebalancing": True, "cycles_per_sec": 3.0}
                ],
            }
        ]
        metrics = gate.flatten_metrics(data)
        assert metrics["[benchmark=scaling,n=1000].vectorized_cps"] == 2.0
        assert metrics["[benchmark=scaling,n=1000].sharded_cps.2"] == 2.5
        assert (
            metrics[
                "[benchmark=scaling,n=1000].ladder"
                "[workers=2,rebalancing=True].cycles_per_sec"
            ]
            == 3.0
        )
        assert not any("cores" in key for key in metrics)

    def test_append_log_takes_last_occurrence(self, gate):
        data = [
            {"benchmark": "b", "n": 10, "vectorized_cps": 1.0},
            {"benchmark": "b", "n": 10, "vectorized_cps": 9.0},
        ]
        assert gate.flatten_metrics(data) == {
            "[benchmark=b,n=10].vectorized_cps": 9.0
        }

    def test_booleans_are_not_metrics(self, gate):
        assert gate.flatten_metrics([{"benchmark": "b", "fast_cps": True}]) == {}


class TestPhaseTracking:
    """Nested phase metrics are flattened and *tracked* (drift shown)
    but never gated — only cycles/sec keys can fail the CI job."""

    def test_phase_breakdowns_are_flattened(self, gate):
        data = [
            {
                "benchmark": "scaling",
                "n": 1000,
                "vectorized_cps": 2.0,
                "phases": {
                    "vectorized": {"refresh": 1.25, "ranking": 0.75},
                    "sharded_w2": {
                        "refresh": 0.9,
                        "worker_kernel_ns": 5_000,
                        "barrier_wait_ns": 1_000,
                    },
                },
            }
        ]
        metrics = gate.flatten_metrics(data)
        prefix = "[benchmark=scaling,n=1000].phases"
        assert metrics[f"{prefix}.vectorized.refresh"] == 1.25
        assert metrics[f"{prefix}.sharded_w2.worker_kernel_ns"] == 5000.0
        assert metrics["[benchmark=scaling,n=1000].vectorized_cps"] == 2.0

    def test_phase_drift_is_tracked_not_regression(self, gate):
        rows = gate.compare(
            {"x.phases.a.refresh": 4.0}, {"x.phases.a.refresh": 0.5}, 0.25
        )
        assert rows[0]["status"] == "tracked"
        assert rows[0]["ratio"] == 0.125

    def test_gate_passes_despite_phase_collapse(self, gate, tmp_path):
        results = os.path.join(str(tmp_path), "results")
        baselines = os.path.join(results, "baselines")
        os.makedirs(baselines)
        with open(os.path.join(results, "x.json"), "w") as handle:
            json.dump(
                [
                    {
                        "benchmark": "x",
                        "vectorized_cps": 2.0,
                        "phases": {"v": {"refresh": 99.0}},
                    }
                ],
                handle,
            )
        with open(os.path.join(baselines, "x.json"), "w") as handle:
            json.dump(
                {
                    "metrics": {
                        "[benchmark=x].vectorized_cps": 2.0,
                        "[benchmark=x].phases.v.refresh": 1.0,
                    }
                },
                handle,
            )
        assert gate.run_gate(results, baselines, 0.25) == 0

    def test_gate_still_fails_on_cps_regression(self, gate, tmp_path):
        results = os.path.join(str(tmp_path), "results")
        baselines = os.path.join(results, "baselines")
        os.makedirs(baselines)
        with open(os.path.join(results, "x.json"), "w") as handle:
            json.dump(
                [
                    {
                        "benchmark": "x",
                        "vectorized_cps": 1.0,
                        "phases": {"v": {"refresh": 1.0}},
                    }
                ],
                handle,
            )
        with open(os.path.join(baselines, "x.json"), "w") as handle:
            json.dump(
                {
                    "metrics": {
                        "[benchmark=x].vectorized_cps": 2.0,
                        "[benchmark=x].phases.v.refresh": 1.0,
                    }
                },
                handle,
            )
        assert gate.run_gate(results, baselines, 0.25) == 1


class TestMetricsTracking:
    """Convergence ``metrics_*`` values from a streamed run are
    flattened and *tracked* like phase timings — visible drift, never
    a gate."""

    def test_metrics_finals_are_flattened(self, gate):
        data = [
            {
                "benchmark": "scaling",
                "n": 1000,
                "vectorized_cps": 2.0,
                "phases": {
                    "vectorized": {
                        "refresh": 1.25,
                        "metrics_final_sdm": 0.42,
                        "metrics_final_accuracy": 0.93,
                        "metrics_final_live": 1000,
                    },
                },
            }
        ]
        metrics = gate.flatten_metrics(data)
        prefix = "[benchmark=scaling,n=1000].phases.vectorized"
        assert metrics[f"{prefix}.metrics_final_sdm"] == 0.42
        assert metrics[f"{prefix}.metrics_final_live"] == 1000.0

    def test_metrics_drift_is_tracked_not_regression(self, gate):
        rows = gate.compare(
            {"x.phases.v.metrics_final_sdm": 0.4},
            {"x.phases.v.metrics_final_sdm": 4.0},
            0.25,
        )
        assert rows[0]["status"] == "tracked"
        assert rows[0]["ratio"] == 10.0

    def test_gate_passes_despite_metrics_collapse(self, gate, tmp_path):
        results = os.path.join(str(tmp_path), "results")
        baselines = os.path.join(results, "baselines")
        os.makedirs(baselines)
        with open(os.path.join(results, "x.json"), "w") as handle:
            json.dump(
                [
                    {
                        "benchmark": "x",
                        "vectorized_cps": 2.0,
                        "phases": {"v": {"metrics_final_sdm": 99.0}},
                    }
                ],
                handle,
            )
        with open(os.path.join(baselines, "x.json"), "w") as handle:
            json.dump(
                {
                    "metrics": {
                        "[benchmark=x].vectorized_cps": 2.0,
                        "[benchmark=x].phases.v.metrics_final_sdm": 0.1,
                    }
                },
                handle,
            )
        assert gate.run_gate(results, baselines, 0.25) == 0


class TestSpeedupFloor:
    """``speedup`` metrics are gated like throughput *plus* an
    absolute floor — the n=1e6 sharded-w4 bar must hold even if the
    baseline itself eroded or does not exist yet."""

    def test_above_floor_passes(self, gate):
        rows = gate.compare(
            {"x.speedup_sharded_w4_vs_vectorized": 3.0},
            {"x.speedup_sharded_w4_vs_vectorized": 2.6},
            threshold=0.25,
        )
        assert rows[0]["status"] == "ok"

    def test_below_floor_fails_even_within_threshold(self, gate):
        # 1.9 is within 25% of a 2.2 baseline, but under the 2.0 floor.
        rows = gate.compare(
            {"x.speedup_sharded_w4_vs_vectorized": 2.2},
            {"x.speedup_sharded_w4_vs_vectorized": 1.9},
            threshold=0.25,
        )
        assert rows[0]["status"] == "regression"

    def test_new_metric_below_floor_still_fails(self, gate):
        rows = gate.compare(
            {}, {"x.speedup_sharded_w4_vs_vectorized": 1.5}, threshold=0.25
        )
        assert rows[0]["status"] == "regression"

    def test_new_metric_above_floor_is_new(self, gate):
        rows = gate.compare(
            {}, {"x.speedup_sharded_w4_vs_vectorized": 2.4}, threshold=0.25
        )
        assert rows[0]["status"] == "new"

    def test_speedup_keys_are_flattened(self, gate):
        data = [
            {
                "benchmark": "scaling",
                "n": 1_000_000,
                "speedup_sharded_w4_vs_vectorized": 2.5,
                "barriers_per_cycle": 14.5,
            }
        ]
        metrics = gate.flatten_metrics(data)
        prefix = "[benchmark=scaling,n=1000000]"
        assert metrics[f"{prefix}.speedup_sharded_w4_vs_vectorized"] == 2.5
        assert metrics[f"{prefix}.barriers_per_cycle"] == 14.5


class TestBarriersLowerIsBetter:
    """``barriers`` counts gate strictly downward: one extra
    round-trip per cycle fails, no 25% allowance."""

    def test_equal_passes(self, gate):
        rows = gate.compare(
            {"x.barriers_per_cycle": 15.0},
            {"x.barriers_per_cycle": 15.0},
            threshold=0.25,
        )
        assert rows[0]["status"] == "ok"

    def test_decrease_passes(self, gate):
        rows = gate.compare(
            {"x.barriers_per_cycle": 15.0},
            {"x.barriers_per_cycle": 14.0},
            threshold=0.25,
        )
        assert rows[0]["status"] == "ok"

    def test_any_increase_fails(self, gate):
        rows = gate.compare(
            {"x.barriers_per_cycle": 15.0},
            {"x.barriers_per_cycle": 16.0},
            threshold=0.25,
        )
        assert rows[0]["status"] == "regression"

    def test_barrier_wait_phase_timing_stays_tracked(self, gate):
        # Wall-clock wait under phases.* must keep drifting freely —
        # only the structural round-trip *count* gates.
        rows = gate.compare(
            {"x.phases.w2.barrier_wait_ns": 1000.0},
            {"x.phases.w2.barrier_wait_ns": 9000.0},
            threshold=0.25,
        )
        assert rows[0]["status"] == "tracked"


class TestCompare:
    def test_within_threshold_passes(self, gate):
        rows = gate.compare({"k": 4.0}, {"k": 3.2}, threshold=0.25)
        assert rows[0]["status"] == "ok"

    def test_regression_flagged(self, gate):
        rows = gate.compare({"k": 4.0}, {"k": 2.9}, threshold=0.25)
        assert rows[0]["status"] == "regression"

    def test_improvement_passes(self, gate):
        rows = gate.compare({"k": 4.0}, {"k": 40.0}, threshold=0.25)
        assert rows[0]["status"] == "ok"

    def test_new_and_stale_metrics_not_gated(self, gate):
        rows = gate.compare({"gone": 1.0}, {"fresh": 1.0}, threshold=0.25)
        statuses = {row["metric"]: row["status"] for row in rows}
        assert statuses == {"gone": "stale", "fresh": "new"}


class TestGate:
    def _write(self, path, payload):
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w") as handle:
            json.dump(payload, handle)

    def _dirs(self, tmp_path):
        results = os.path.join(str(tmp_path), "results")
        baselines = os.path.join(results, "baselines")
        os.makedirs(baselines)
        return results, baselines

    def test_passing_run_exits_zero_and_writes_report(self, gate, tmp_path):
        results, baselines = self._dirs(tmp_path)
        self._write(
            os.path.join(results, "x.json"),
            [{"benchmark": "x", "vectorized_cps": 2.0}],
        )
        self._write(
            os.path.join(baselines, "x.json"),
            {"metrics": {"[benchmark=x].vectorized_cps": 2.1}},
        )
        report = os.path.join(str(tmp_path), "report.json")
        assert (
            gate.run_gate(results, baselines, 0.25, report_path=report) == 0
        )
        with open(report) as handle:
            content = json.load(handle)
        assert content["benchmarks"]["x.json"][0]["status"] == "ok"

    def test_regressed_run_exits_nonzero(self, gate, tmp_path):
        results, baselines = self._dirs(tmp_path)
        self._write(
            os.path.join(results, "x.json"),
            [{"benchmark": "x", "vectorized_cps": 1.0}],
        )
        self._write(
            os.path.join(baselines, "x.json"),
            {"metrics": {"[benchmark=x].vectorized_cps": 2.0}},
        )
        assert gate.run_gate(results, baselines, 0.25) == 1

    def test_missing_results_file_is_stale_not_fatal(self, gate, tmp_path):
        results, baselines = self._dirs(tmp_path)
        self._write(
            os.path.join(baselines, "gone.json"), {"metrics": {"k": 1.0}}
        )
        assert gate.run_gate(results, baselines, 0.25) == 0

    def test_update_baselines_round_trips(self, gate, tmp_path):
        results, baselines = self._dirs(tmp_path)
        self._write(
            os.path.join(results, "x.json"),
            [{"benchmark": "x", "vectorized_cps": 3.0}],
        )
        assert gate.run_gate(results, baselines, 0.25, update=True) == 0
        assert gate.run_gate(results, baselines, 0.25) == 0
        with open(os.path.join(baselines, "x.json")) as handle:
            assert json.load(handle)["metrics"] == {
                "[benchmark=x].vectorized_cps": 3.0
            }

    def test_main_cli(self, gate, tmp_path):
        results, baselines = self._dirs(tmp_path)
        self._write(
            os.path.join(results, "x.json"),
            [{"benchmark": "x", "vectorized_cps": 1.0}],
        )
        self._write(
            os.path.join(baselines, "x.json"),
            {"metrics": {"[benchmark=x].vectorized_cps": 2.0}},
        )
        code = gate.main(
            [
                "--results",
                results,
                "--baselines",
                baselines,
                "--report",
                os.path.join(str(tmp_path), "r.json"),
            ]
        )
        assert code == 1
