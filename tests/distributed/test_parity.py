"""Cross-backend parity for the distributed (message-transport) driver.

The acceptance bar of the distributed backend: because it consumes the
same :class:`~repro.bulk.CyclePlan` and shard kernels as the other bulk
backends and only replaces shared memory with framed messages, a run
over the **TCP transport** must be *bitwise identical* to the
vectorized backend at workers 1/2/4, under none/half/full concurrency,
with rebalancing off and on — and the loopback transport must produce
the same bytes as TCP.
"""

import numpy as np
import pytest

from repro.churn.models import RegularChurn
from repro.core.slices import SlicePartition
from repro.distributed import DistributedSimulation
from repro.vectorized.simulation import VectorSimulation

STATE_COLUMNS = ("attribute", "value", "alive", "obs_le", "obs_total")


def assert_states_identical(vectorized, distributed):
    state_d = distributed.sync_state()
    state_v = vectorized.state
    assert state_v.size == state_d.size
    n = state_v.size
    for column in STATE_COLUMNS:
        assert np.array_equal(
            getattr(state_v, column)[:n], getattr(state_d, column)[:n]
        ), f"{column} diverged"
    assert np.array_equal(state_v.view_ids[:n], state_d.view_ids[:n])
    assert np.array_equal(state_v.view_ages[:n], state_d.view_ages[:n])
    assert vectorized.bus_stats.sent == distributed.bus_stats.sent
    assert vectorized.bus_stats.swaps == distributed.bus_stats.swaps
    assert (
        vectorized.bus_stats.unsuccessful_swaps
        == distributed.bus_stats.unsuccessful_swaps
    )
    assert vectorized.bus_stats.overlapping == distributed.bus_stats.overlapping


def skewed_churn(rate=0.05):
    """Correlated churn (lowest leave, above-max join) — concentrates
    dead rows so the rebalancing path actually fires."""
    return RegularChurn(rate=rate, period=1)


def paired_runs(protocol, workers, transport, cycles=6, size=200, **overrides):
    kwargs = dict(
        size=size,
        partition=SlicePartition.equal(10),
        protocol=protocol,
        view_size=8,
        seed=13,
        **overrides,
    )
    vectorized = VectorSimulation(**kwargs)
    vectorized.run(cycles)
    distributed = DistributedSimulation(
        workers=workers, transport=transport, **kwargs
    )
    distributed.run(cycles)
    return vectorized, distributed


class TestTcpAcceptanceMatrix:
    """The ISSUE acceptance matrix, over real localhost TCP sockets:
    workers x concurrency x rebalancing, all bitwise."""

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("concurrency", ["none", "half", "full"])
    def test_rebalancing_off(self, workers, concurrency):
        vectorized, distributed = paired_runs(
            "mod-jk", workers, "tcp", concurrency=concurrency
        )
        try:
            assert vectorized.rebalance_count == 0
            assert_states_identical(vectorized, distributed)
        finally:
            distributed.close()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("concurrency", ["none", "half", "full"])
    def test_rebalancing_on(self, workers, concurrency):
        vectorized, distributed = paired_runs(
            "mod-jk",
            workers,
            "tcp",
            cycles=8,
            churn=skewed_churn(),
            concurrency=concurrency,
            rebalance_every=2,
        )
        try:
            assert vectorized.rebalance_count > 0
            assert distributed.rebalance_count == vectorized.rebalance_count
            assert_states_identical(vectorized, distributed)
        finally:
            distributed.close()

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_service_over_tcp_matches_vectorized(self, workers):
        # The acceptance criterion verbatim: the *service* facade with
        # backend="distributed" over the (default) TCP transport.
        from repro.core.service import SlicingService

        spec = dict(
            size=150, slices=8, algorithm="ranking", view_size=6, seed=17
        )
        with SlicingService(
            backend="distributed", workers=workers, **spec
        ) as service:
            assert service.simulation.transport == "tcp"
            service.run(5)
            with SlicingService(backend="vectorized", **spec) as reference:
                reference.run(5)
                assert service.disorder() == reference.disorder()
                assert service.accuracy() == reference.accuracy()
                assert service.slice_sizes() == reference.slice_sizes()
                assert (
                    service.confident_fraction()
                    == reference.confident_fraction()
                )

    def test_ranking_with_churn_over_tcp(self):
        vectorized, distributed = paired_runs(
            "ranking", 2, "tcp", cycles=8, churn=RegularChurn(rate=0.02, period=2)
        )
        try:
            assert vectorized.state.size > 200  # churn actually fired
            assert_states_identical(vectorized, distributed)
        finally:
            distributed.close()


class TestLoopbackParity:
    """The in-process loopback transport: same framed bytes, no
    process spawn — the full protocol matrix runs here."""

    @pytest.mark.parametrize(
        "protocol", ["ranking", "mod-jk", "jk", "random-misplaced"]
    )
    def test_protocols_identical(self, protocol):
        vectorized, distributed = paired_runs(protocol, 2, "loopback")
        try:
            assert_states_identical(vectorized, distributed)
        finally:
            distributed.close()

    def test_exact_window_identical(self):
        vectorized, distributed = paired_runs(
            "ranking-window", 2, "loopback", window=15
        )
        try:
            assert_states_identical(vectorized, distributed)
            n = vectorized.state.size
            assert np.array_equal(
                vectorized.state.win_bits[:n], distributed.state.win_bits[:n]
            )
        finally:
            distributed.close()

    def test_exact_window_identical_with_rebalancing(self):
        # The migration must ship the bit-packed window columns too.
        vectorized, distributed = paired_runs(
            "ranking-window",
            2,
            "loopback",
            cycles=10,
            window=15,
            churn=skewed_churn(),
            rebalance_every=2,
        )
        try:
            assert vectorized.rebalance_count > 0
            assert_states_identical(vectorized, distributed)
            n = vectorized.state.size
            for column in ("win_bits", "win_pos", "win_len"):
                assert np.array_equal(
                    getattr(vectorized.state, column)[:n],
                    getattr(distributed.state, column)[:n],
                ), column
        finally:
            distributed.close()

    def test_uniform_oracle_identical(self):
        vectorized, distributed = paired_runs(
            "ranking", 2, "loopback", sampler="uniform"
        )
        try:
            assert_states_identical(vectorized, distributed)
        finally:
            distributed.close()

    def test_threshold_rebalance_identical_and_loads_even(self):
        vectorized, distributed = paired_runs(
            "ranking",
            4,
            "loopback",
            cycles=10,
            churn=skewed_churn(),
            rebalance_threshold=1.5,
        )
        try:
            assert vectorized.rebalance_count > 0
            loads = distributed.shard_live_loads()
            assert len(loads) == 4
            assert sum(loads) == distributed.live_count
            assert distributed.shard_load_ratio() <= 2.0
            assert_states_identical(vectorized, distributed)
        finally:
            distributed.close()

    @pytest.mark.parametrize("workers", [2, 5])
    def test_tree_reduced_metrics_exactly_equal_vectorized(self, workers):
        # SDM/accuracy ship integer (truth, believed) count matrices
        # over the wire and reduce them exactly; GDM/confident/sizes
        # reduce worker partials — all bitwise worker-count independent.
        vectorized, distributed = paired_runs(
            "ranking",
            workers,
            "loopback",
            cycles=8,
            churn=skewed_churn(),
            rebalance_every=3,
        )
        try:
            assert distributed.slice_disorder() == vectorized.slice_disorder()
            assert distributed.accuracy() == vectorized.accuracy()
            assert (
                distributed.confident_fraction()
                == vectorized.confident_fraction()
            )
            assert distributed.slice_sizes() == vectorized.slice_sizes()
            assert distributed.global_disorder() == vectorized.global_disorder()
        finally:
            distributed.close()

    def test_compat_churn_api_identical(self):
        # add_node/remove_node between cycles must replicate to the
        # workers (the object-API churn path).
        kwargs = dict(
            size=120,
            partition=SlicePartition.equal(8),
            protocol="ranking",
            view_size=6,
            seed=5,
        )
        vectorized = VectorSimulation(**kwargs)
        distributed = DistributedSimulation(
            workers=2, transport="loopback", **kwargs
        )
        try:
            for sim in (vectorized, distributed):
                sim.run(2)
                sim.add_node(0.77)
                sim.remove_node(3)
                sim.run(3)
            assert_states_identical(vectorized, distributed)
        finally:
            distributed.close()


class TestTransportEquivalence:
    """TCP and loopback are the same protocol over different sockets:
    identical results, byte for byte."""

    @pytest.mark.parametrize(
        "scenario",
        [
            dict(protocol="ranking"),
            dict(protocol="mod-jk", concurrency="half"),
            dict(
                protocol="ranking",
                churn=skewed_churn(),
                rebalance_every=2,
                cycles=8,
            ),
        ],
        ids=["ranking", "modjk-half", "rebalancing"],
    )
    def test_loopback_equals_tcp(self, scenario):
        scenario = dict(scenario)
        cycles = scenario.pop("cycles", 6)
        kwargs = dict(
            size=150,
            partition=SlicePartition.equal(8),
            view_size=6,
            seed=21,
            **scenario,
        )
        over_tcp = DistributedSimulation(workers=2, transport="tcp", **kwargs)
        over_loopback = DistributedSimulation(
            workers=2, transport="loopback", **kwargs
        )
        try:
            over_tcp.run(cycles)
            over_loopback.run(cycles)
            state_t = over_tcp.sync_state()
            state_l = over_loopback.sync_state()
            n = state_t.size
            assert state_l.size == n
            for column in STATE_COLUMNS + ("view_ids", "view_ages"):
                assert np.array_equal(
                    getattr(state_t, column)[:n], getattr(state_l, column)[:n]
                ), column
        finally:
            over_tcp.close()
            over_loopback.close()


class TestFaultParityBitwise:
    """Loss + delay + partitions over the message transports: the fault
    fates are drawn in the plan and shipped as payload slices, so the
    distributed backend is bitwise identical to vectorized under every
    fault regime."""

    def fault_runs(self, protocol, workers, transport, cycles=8, **overrides):
        from repro.bulk.faults import build_fault_model

        faults = build_fault_model(loss=0.15, delay="0.25:3", partition="2:3:2")
        return paired_runs(
            protocol,
            workers,
            transport,
            cycles=cycles,
            faults=faults,
            **overrides,
        )

    @pytest.mark.parametrize("workers", [1, 2, 4])
    @pytest.mark.parametrize("protocol", ["ranking", "mod-jk"])
    def test_loopback_full_fault_regime(self, workers, protocol):
        vectorized, distributed = self.fault_runs(protocol, workers, "loopback")
        try:
            assert vectorized.bus_stats.lost > 0
            assert distributed.bus_stats.lost == vectorized.bus_stats.lost
            assert distributed.bus_stats.delayed == vectorized.bus_stats.delayed
            assert_states_identical(vectorized, distributed)
        finally:
            distributed.close()

    def test_tcp_full_fault_regime(self):
        vectorized, distributed = self.fault_runs("mod-jk", 2, "tcp")
        try:
            assert_states_identical(vectorized, distributed)
        finally:
            distributed.close()

    def test_faults_with_rebalancing_identical(self):
        vectorized, distributed = self.fault_runs(
            "ranking",
            2,
            "loopback",
            cycles=10,
            churn=skewed_churn(),
            rebalance_every=2,
        )
        try:
            assert vectorized.rebalance_count > 0
            assert_states_identical(vectorized, distributed)
        finally:
            distributed.close()
