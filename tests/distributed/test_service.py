"""Service/registry surface of the distributed backend: validation,
spec wiring, and the SlicingService integration point."""

import pytest

from repro.core.backends import get_backend, supported_combinations
from repro.core.service import SlicingService
from repro.experiments.config import RunSpec, build_simulation


class TestRegistry:
    def test_distributed_backend_registered(self):
        spec = get_backend("distributed")
        assert spec.multiprocess
        assert spec.rebalances
        assert spec.remote_hosts

    def test_capability_lines_name_hosts(self):
        lines = "\n".join(supported_combinations())
        assert "backend='distributed'" in lines
        assert "hosts=[...]" in lines

    @pytest.mark.parametrize("backend", ["reference", "vectorized", "sharded"])
    def test_hosts_rejected_on_other_backends(self, backend):
        with pytest.raises(ValueError, match="hosts"):
            get_backend(backend).validate(
                concurrency="none", workers=None, hosts=["a:1"]
            )

    def test_hosts_and_workers_must_agree(self):
        spec = get_backend("distributed")
        with pytest.raises(ValueError, match="disagrees"):
            spec.validate(concurrency="none", workers=3, hosts=["a:1", "b:2"])
        spec.validate(concurrency="none", workers=2, hosts=["a:1", "b:2"])

    def test_empty_hosts_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            get_backend("distributed").validate(
                concurrency="none", workers=None, hosts=[]
            )

    def test_workers_validation_still_fails_fast(self):
        with pytest.raises(ValueError, match="positive integer"):
            get_backend("distributed").validate(concurrency="none", workers=0)


class TestRunSpec:
    def test_describe_names_hosts(self):
        spec = RunSpec(
            backend="distributed", workers=2, hosts=("a:1", "b:2")
        )
        described = spec.describe()
        assert "backend=distributed" in described
        assert "hosts=a:1,b:2" in described

    def test_build_simulation_dispatches_distributed(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISTRIBUTED_TRANSPORT", "loopback")
        spec = RunSpec(
            n=80,
            cycles=2,
            slice_count=5,
            view_size=6,
            protocol="ranking",
            backend="distributed",
            workers=2,
            seed=1,
        )
        sim = build_simulation(spec)
        try:
            assert type(sim).__name__ == "DistributedSimulation"
            sim.run(spec.cycles)
            assert sim.live_count == 80
        finally:
            sim.close()


class TestService:
    def test_service_runs_and_serves_queries(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISTRIBUTED_TRANSPORT", "loopback")
        with SlicingService(
            size=80,
            slices=5,
            algorithm="ranking",
            backend="distributed",
            workers=2,
            seed=4,
        ) as service:
            changes = []
            service.subscribe(changes.append)
            service.run(4)
            assert service.size == 80
            assert sum(service.slice_sizes()) == 80
            assert 0.0 <= service.accuracy() <= 1.0
            assert service.disorder() >= 0.0
            members = service.members(0)
            assert all(service.slice_of(node) == 0 for node in members)

    def test_service_join_leave_replicate(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISTRIBUTED_TRANSPORT", "loopback")
        with SlicingService(
            size=60,
            slices=4,
            algorithm="ranking",
            backend="distributed",
            workers=2,
            seed=4,
        ) as service:
            service.run(2)
            node = service.join(0.9)
            service.leave(0)
            service.run(2)
            assert service.size == 60
            assert service.slice_of(node) in range(4)

    def test_service_rejects_hosts_on_sharded(self):
        with pytest.raises(ValueError, match="hosts"):
            SlicingService(size=50, backend="sharded", hosts=["a:1"])
