"""Transport-layer tests: framing failure paths, worker-death
detection, the standalone (hosts=) worker, and lifecycle."""

import os
import socket
import struct
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.core.slices import SlicePartition
from repro.distributed import DistributedSimulation
from repro.distributed.framing import (
    ConnectionClosed,
    FrameError,
    recv_frame,
    recv_message,
    send_frame,
    send_message,
)
from repro.distributed.transport import parse_host_port
from repro.vectorized.simulation import VectorSimulation


def make_sim(workers=2, transport="loopback", size=120, **overrides):
    kwargs = dict(
        size=size,
        partition=SlicePartition.equal(8),
        protocol="ranking",
        view_size=6,
        seed=9,
        **overrides,
    )
    return DistributedSimulation(workers=workers, transport=transport, **kwargs)


class TestFraming:
    def pair(self):
        return socket.socketpair()

    def test_roundtrip(self):
        a, b = self.pair()
        send_message(a, {"x": np.arange(5), "y": "hello"})
        message = recv_message(b)
        assert message["y"] == "hello"
        assert np.array_equal(message["x"], np.arange(5))
        a.close()
        b.close()

    def test_multiple_frames_in_order(self):
        a, b = self.pair()
        for i in range(5):
            send_frame(a, bytes([i]) * (i + 1))
        for i in range(5):
            assert recv_frame(b) == bytes([i]) * (i + 1)
        a.close()
        b.close()

    def test_clean_close_between_frames(self):
        a, b = self.pair()
        send_frame(a, b"last")
        a.close()
        assert recv_frame(b) == b"last"
        with pytest.raises(ConnectionClosed):
            recv_frame(b)
        b.close()

    def test_truncated_payload(self):
        a, b = self.pair()
        # Announce 100 bytes, deliver 3, die.
        a.sendall(struct.pack(">Q", 100) + b"abc")
        a.close()
        with pytest.raises(FrameError, match="truncated"):
            recv_frame(b)
        b.close()

    def test_truncated_header(self):
        a, b = self.pair()
        a.sendall(b"\x00\x00\x00")  # 3 of 8 header bytes
        a.close()
        with pytest.raises(FrameError, match="truncated"):
            recv_frame(b)
        b.close()

    def test_oversized_announcement_rejected_before_read(self):
        a, b = self.pair()
        a.sendall(struct.pack(">Q", 1 << 40))
        with pytest.raises(FrameError, match="cap"):
            recv_frame(b, max_frame=1 << 20)
        a.close()
        b.close()

    def test_oversized_send_rejected(self):
        a, b = self.pair()
        with pytest.raises(FrameError, match="cap"):
            send_frame(a, b"x" * 1025, max_frame=1024)
        a.close()
        b.close()

    def test_parse_host_port(self):
        assert parse_host_port("localhost:7077") == ("localhost", 7077)
        with pytest.raises(ValueError, match="host:port"):
            parse_host_port("no-port")
        with pytest.raises(ValueError, match="port"):
            parse_host_port("host:seven")


class TestWorkerDeath:
    """A worker dying mid-run must surface as an immediate, named
    error on the next exchange — never a hang."""

    def test_killed_tcp_worker_raises(self):
        sim = make_sim(workers=2, transport="tcp")
        try:
            sim.run(2)
            executor = sim._executor()
            victim = executor._workers[1]
            victim.process.kill()
            victim.process.join(timeout=5)
            with pytest.raises(RuntimeError, match="worker 1 .* died"):
                sim.run(3)
        finally:
            sim.close()

    def test_worker_error_propagates_with_traceback(self):
        sim = make_sim(workers=2, transport="loopback")
        try:
            sim.run(1)
            executor = sim._executor()
            with pytest.raises(RuntimeError, match="no-such-command"):
                executor.run("no-such-command", [{}, {}])
            # The pool survives a command error and keeps serving.
            sim.run(1)
        finally:
            sim.close()


class TestStandaloneWorker:
    """The multi-host mode: pre-started listening workers reached via
    ``hosts=["host:port", ...]``."""

    def _free_port(self):
        probe = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return port

    def test_hosts_mode_end_to_end(self):
        ports = [self._free_port(), self._free_port()]
        env = dict(os.environ)
        src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        listeners = [
            subprocess.Popen(
                [
                    sys.executable,
                    "-m",
                    "repro.distributed.worker",
                    "--listen",
                    f"127.0.0.1:{port}",
                ],
                env=env,
                stdout=subprocess.PIPE,
                stderr=subprocess.STDOUT,
            )
            for port in ports
        ]
        sim = None
        try:
            time.sleep(1.0)  # let the listeners bind
            kwargs = dict(
                size=120,
                partition=SlicePartition.equal(8),
                protocol="ranking",
                view_size=6,
                seed=9,
            )
            deadline = time.time() + 15
            while True:
                try:
                    sim = DistributedSimulation(
                        hosts=[f"127.0.0.1:{port}" for port in ports], **kwargs
                    )
                    break
                except (OSError, ConnectionError):
                    if time.time() > deadline:
                        raise
                    time.sleep(0.3)
            assert sim.workers == 2
            sim.run(4)
            vectorized = VectorSimulation(**kwargs)
            vectorized.run(4)
            state = sim.sync_state()
            n = vectorized.state.size
            assert np.array_equal(
                vectorized.state.view_ids[:n], state.view_ids[:n]
            )
            assert np.array_equal(vectorized.state.value[:n], state.value[:n])
            sim.close()
            # Standing workers keep listening: a second driver session
            # against the same hosts must work (figure sweeps build
            # several simulations per run).
            deadline = time.time() + 15
            while True:
                try:
                    sim = DistributedSimulation(
                        hosts=[f"127.0.0.1:{port}" for port in ports], **kwargs
                    )
                    break
                except (OSError, ConnectionError):
                    if time.time() > deadline:
                        raise
                    time.sleep(0.3)
            sim.run(2)
            assert sim.live_count == 120
        finally:
            if sim is not None:
                sim.close()
            for process in listeners:
                process.terminate()
                process.wait(timeout=10)


class TestLifecycle:
    def test_close_is_idempotent(self):
        sim = make_sim(workers=2)
        sim.run(2)
        sim.close()
        sim.close()

    def test_run_after_close_raises_instead_of_diverging(self):
        # A fresh executor after close() would snapshot the driver's
        # stale heavy columns and silently lose parity — must refuse.
        sim = make_sim(workers=2)
        sim.run(2)
        sim.close()
        with pytest.raises(RuntimeError, match="closed"):
            sim.run(1)

    def test_close_syncs_state_for_exact_post_close_reads(self):
        kwargs = dict(
            size=120,
            partition=SlicePartition.equal(8),
            protocol="ranking",
            view_size=6,
            seed=9,
        )
        vectorized = VectorSimulation(**kwargs)
        vectorized.run(4)
        sim = DistributedSimulation(workers=2, transport="loopback", **kwargs)
        sim.run(4)
        sim.close()
        # Metric fallbacks after close read the driver's local copy,
        # which the final sync made an exact replica (obs counters are
        # heavy columns — they only exist driver-side via that sync).
        assert sim.confident_fraction() == vectorized.confident_fraction()
        n = vectorized.state.size
        assert np.array_equal(
            vectorized.state.view_ids[:n], sim.state.view_ids[:n]
        )

    def test_context_manager_releases_workers(self):
        with make_sim(workers=2, transport="tcp") as sim:
            sim.run(1)
            processes = [
                handle.process for handle in sim._executor()._workers
            ]
        deadline = time.time() + 5
        while time.time() < deadline and any(p.is_alive() for p in processes):
            time.sleep(0.05)
        assert all(not p.is_alive() for p in processes)

    def test_garbage_collection_releases_workers(self):
        import gc
        import weakref

        sim = make_sim(workers=2, transport="tcp")
        sim.run(1)
        processes = [handle.process for handle in sim._executor()._workers]
        ref = weakref.ref(sim)
        del sim
        gc.collect()
        assert ref() is None, "simulation kept alive by its own finalizer"
        deadline = time.time() + 5
        while time.time() < deadline and any(p.is_alive() for p in processes):
            time.sleep(0.05)
        assert all(not p.is_alive() for p in processes)

    @pytest.mark.parametrize("method", ["fork", "spawn"])
    def test_start_methods(self, method, monkeypatch):
        import multiprocessing

        if method not in multiprocessing.get_all_start_methods():
            pytest.skip(f"start method {method!r} unsupported here")
        monkeypatch.setenv("REPRO_DISTRIBUTED_START_METHOD", method)
        kwargs = dict(
            size=100,
            partition=SlicePartition.equal(8),
            protocol="ranking",
            view_size=6,
            seed=2,
        )
        vectorized = VectorSimulation(**kwargs)
        vectorized.run(3)
        with DistributedSimulation(workers=2, transport="tcp", **kwargs) as sim:
            sim.run(3)
            state = sim.sync_state()
            n = vectorized.state.size
            assert np.array_equal(
                vectorized.state.view_ids[:n], state.view_ids[:n]
            )
