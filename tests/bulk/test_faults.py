"""The plan-level fault model: configuration, parsing, the delayed
mailbox, degenerate ("torn") regimes, and the availability traces.

The parity story — bitwise vectorized == sharded == distributed under
every fault regime — is asserted in the backend parity suites; this
module pins the fault layer itself, including the configurations that
are easy to get wrong: total blackout (``loss=1.0`` must stall, never
crash), delays longer than the run (mail stays queued, no leak into
results), and partitions isolating every node.
"""

import numpy as np
import pytest

from repro.bulk.faults import (
    FaultModel,
    FaultQueue,
    PartitionWindow,
    build_fault_model,
    parse_delay,
    parse_partitions,
)
from repro.churn.correlated import AvailabilityTrace
from repro.churn.models import AvailabilityChurn
from repro.core.slices import SlicePartition
from repro.experiments.config import RunSpec, build_simulation
from repro.vectorized.simulation import VectorSimulation

from test_plan import make_plan


def make_fault_plan(fault_model, cycle=0, seed=0):
    plan = make_plan(seed=seed)
    plan.fault_model = fault_model
    plan.cycle = cycle
    return plan


class TestConfiguration:
    def test_partition_window_validation(self):
        with pytest.raises(ValueError, match="start"):
            PartitionWindow(-1, 5)
        with pytest.raises(ValueError, match="duration"):
            PartitionWindow(0, 0)
        with pytest.raises(ValueError, match="groups"):
            PartitionWindow(0, 5, groups=1)

    def test_window_active_interval_is_half_open(self):
        window = PartitionWindow(start=10, duration=5)
        assert not window.active(9)
        assert window.active(10)
        assert window.active(14)
        assert not window.active(15)

    def test_model_validation(self):
        with pytest.raises(ValueError, match="loss"):
            FaultModel(loss=1.5)
        with pytest.raises(ValueError, match="delay"):
            FaultModel(delay=-0.1)
        with pytest.raises(ValueError, match="delay_max"):
            FaultModel(delay=0.5, delay_max=0)
        with pytest.raises(TypeError):
            FaultModel(partitions=("40:20",))

    def test_enabled(self):
        assert not FaultModel().enabled
        assert FaultModel(loss=0.1).enabled
        assert FaultModel(delay=0.1).enabled
        assert FaultModel(partitions=(PartitionWindow(0, 1),)).enabled
        # loss=1.0 is legal configuration (the blackout regime).
        assert FaultModel(loss=1.0).enabled

    def test_earliest_active_window_wins(self):
        first = PartitionWindow(0, 10, groups=2)
        second = PartitionWindow(5, 10, groups=4)
        model = FaultModel(partitions=(first, second))
        assert model.partition_for(7) is first
        assert model.partition_for(12) is second
        assert model.partition_for(20) is None


class TestParsers:
    def test_parse_delay(self):
        assert parse_delay("0.3") == (0.3, 1)
        assert parse_delay("0.3:5") == (0.3, 5)
        assert parse_delay(0.2) == (0.2, 1)
        assert parse_delay((0.2, 4)) == (0.2, 4)
        with pytest.raises(ValueError, match="P:D"):
            parse_delay("1:2:3")

    def test_parse_partitions(self):
        windows = parse_partitions("40:20,100:10:4")
        assert windows == (
            PartitionWindow(40, 20),
            PartitionWindow(100, 10, 4),
        )
        # Pass-through and empty chunks.
        assert parse_partitions(windows) == windows
        assert parse_partitions("40:20,") == (PartitionWindow(40, 20),)
        with pytest.raises(ValueError, match="start:duration"):
            parse_partitions("40")

    def test_build_fault_model(self):
        assert build_fault_model() is None
        assert build_fault_model(loss=0.0, delay="0", partition="") is None
        model = build_fault_model(loss=0.1, delay="0.2:3", partition="5:2:4")
        assert model.loss == 0.1
        assert model.delay == 0.2
        assert model.delay_max == 3
        assert model.partitions == (PartitionWindow(5, 2, 4),)


class TestPlanFaultDraws:
    """The single-source contract extended to faults: fates ride a
    dedicated stream with draw-count canonicalism."""

    def test_no_model_draws_nothing(self):
        plan = make_plan()
        lost, delay = plan.message_faults("req", 10)
        assert not lost.any() and not delay.any()
        # A fault-free plan's step trace must not mention faults.
        assert not any("faults" in name for name, _size in plan.steps)

    def test_lost_messages_still_get_delay_draws(self):
        # The stream position after message_faults is independent of
        # the loss *outcomes*: two models with different (non-degenerate)
        # loss probabilities leave the faults stream at the same
        # position, so the delay draws that follow coincide.
        traces = {}
        for loss in (0.1, 0.9):
            plan = make_fault_plan(FaultModel(loss=loss, delay=0.5, delay_max=4))
            plan.message_faults("req", 64)
            _lost, delay = plan.message_faults("ack", 64)
            traces[loss] = delay
        assert np.array_equal(traces[0.1], traces[0.9])

    def test_certain_loss_short_circuits(self):
        plan = make_fault_plan(FaultModel(loss=1.0))
        lost, delay = plan.message_faults("upd", 1000)
        assert lost.all()
        assert not delay.any()

    def test_partition_mask_groups_by_id_modulo(self):
        model = FaultModel(partitions=(PartitionWindow(0, 10, groups=2),))
        plan = make_fault_plan(model, cycle=3)
        senders = np.array([0, 1, 2, 3], dtype=np.int64)
        receivers = np.array([2, 2, 5, 4], dtype=np.int64)
        mask = plan.partition_mask(senders, receivers)
        # even->even, odd->even, even->odd, odd->even
        assert mask.tolist() == [False, True, True, True]

    def test_partition_mask_none_outside_window(self):
        model = FaultModel(partitions=(PartitionWindow(5, 2),))
        plan = make_fault_plan(model, cycle=9)
        ids = np.arange(4, dtype=np.int64)
        assert plan.partition_mask(ids, ids[::-1]) is None


class TestFaultQueue:
    def test_fifo_within_and_across_cycles(self):
        queue = FaultQueue()
        queue.push_upd(5, np.array([1, 2]), np.array([0.1, 0.2]))
        queue.push_upd(4, np.array([3]), np.array([0.3]))
        queue.push_upd(5, np.array([4]), np.array([0.4]))
        assert queue.pop_upd(3) is None
        targets, attrs = queue.pop_upd(5)
        # Earlier landing cycle first, then push order.
        assert targets.tolist() == [3, 1, 2, 4]
        assert attrs.tolist() == [0.3, 0.1, 0.2, 0.4]
        assert queue.pop_upd(5) is None

    def test_overdue_mail_delivers_late(self):
        # Cycles can be skipped (live < 2 early-outs); mail whose
        # landing cycle passed unobserved must still deliver.
        queue = FaultQueue()
        queue.push_values(3, np.array([7]), np.array([0.5]), np.array([0.9]))
        receivers, attrs, payloads = queue.pop_values(10)
        assert receivers.tolist() == [7]
        assert payloads.tolist() == [0.9]

    def test_len_and_pending(self):
        queue = FaultQueue()
        assert len(queue) == 0
        queue.push_upd(1, np.array([1, 2]), np.zeros(2))
        queue.push_values(2, np.array([3]), np.zeros(1), np.zeros(1))
        assert queue.pending_upds == 2
        assert queue.pending_values == 1
        assert len(queue) == 3
        # Empty pushes are dropped, not queued.
        queue.push_upd(1, np.empty(0, dtype=np.int64), np.empty(0))
        assert len(queue) == 3

    def test_remap_drops_dead_rows(self):
        queue = FaultQueue()
        queue.push_upd(2, np.array([0, 1, 2]), np.array([0.0, 0.1, 0.2]))
        id_map = np.array([5, -1, 0], dtype=np.int64)
        queue.remap_ids(id_map)
        targets, attrs = queue.pop_upd(2)
        assert targets.tolist() == [5, 0]
        assert attrs.tolist() == [0.0, 0.2]


FAULT_REGIME = dict(loss=0.15, delay="0.25:3", partitions="2:3:2")


class TestTornConfigs:
    """Degenerate regimes must stall or no-op — never crash."""

    def run_spec(self, **overrides):
        overrides.setdefault("protocol", "ranking")
        spec = RunSpec(
            n=200,
            slice_count=10,
            view_size=6,
            backend="vectorized",
            seed=11,
            **overrides,
        )
        sim = build_simulation(spec)
        sim.run(10)
        return sim

    @pytest.mark.parametrize("protocol", ["ranking", "mod-jk"])
    def test_total_blackout_stalls_but_never_crashes(self, protocol):
        sim = self.run_spec(protocol=protocol, loss=1.0)
        stats = sim.bus_stats
        # Nothing got through: no swap completed, no mail was queued.
        assert stats.lost > 0
        assert stats.swaps == 0
        assert stats.delayed == 0

    def test_blackout_freezes_ordering_values(self):
        # mod-JK moves values only through completed swaps; under
        # blackout the value multiset is exactly the initial one.
        faulty = self.run_spec(protocol="mod-jk", loss=1.0)
        idle = build_simulation(
            RunSpec(
                n=200,
                slice_count=10,
                view_size=6,
                backend="vectorized",
                protocol="mod-jk",
                seed=11,
            )
        )
        live = faulty.state.live_ids()
        assert np.array_equal(
            faulty.state.value[live], idle.state.value[live]
        )

    def test_delay_longer_than_run_queues_forever(self):
        # Most messages draw delays far beyond the run's end: the
        # mailbox fills and keeps holding mail at exit — no leak into
        # results, no crash.
        sim = self.run_spec(delay="1.0:1000")
        stats = sim.bus_stats
        assert stats.delayed > 0
        assert len(sim._fault_queue) > 0
        # delivered = sent - lost - delayed + matured: mail still
        # queued at exit is visible as a delivery shortfall.
        assert stats.delivered < stats.sent

    def test_partition_isolating_every_node(self):
        # groups >= n: every pairing crosses groups, the whole run is
        # suppressed while the window is active.
        sim = self.run_spec(partitions="0:10:1000")
        assert sim.bus_stats.swaps == 0

    def test_faults_compose_with_rebalancing(self):
        from repro.churn.models import RegularChurn

        sim = self.run_spec(
            loss=0.2,
            delay="0.3:4",
            churn=RegularChurn(rate=0.05, period=1),
            rebalance_every=2,
        )
        assert sim.rebalance_count > 0
        assert sim.bus_stats.lost > 0


class TestZeroFaultBitwiseCompatibility:
    """Attaching a disabled fault model (or none) must not perturb a
    single draw — the backward-compatibility contract of the dedicated
    faults stream."""

    def test_disabled_model_is_bitwise_invisible(self):
        kwargs = dict(
            size=200,
            partition=SlicePartition.equal(5),
            protocol="ranking",
            view_size=6,
            seed=21,
        )
        plain = VectorSimulation(**kwargs)
        plain.run(6)
        with_model = VectorSimulation(faults=FaultModel(), **kwargs)
        with_model.run(6)
        n = plain.state.size
        for column in ("attribute", "value", "alive", "obs_le", "obs_total"):
            assert np.array_equal(
                getattr(plain.state, column)[:n],
                getattr(with_model.state, column)[:n],
            ), column
        assert np.array_equal(
            plain.state.view_ids[:n], with_model.state.view_ids[:n]
        )


class TestAvailabilityTraces:
    def test_generator_validation(self):
        with pytest.raises(ValueError):
            AvailabilityTrace.flash_crowd(rate=0.0)
        with pytest.raises(ValueError):
            AvailabilityTrace.diurnal_sawtooth(period=1)
        with pytest.raises(ValueError):
            AvailabilityTrace.mass_exit(fraction=1.5)

    def test_flash_crowd_shape(self):
        trace = AvailabilityTrace.flash_crowd(start=10, ramp=3, hold=4, rate=0.05)
        assert trace.rate(9) == 0.0
        assert trace.rate(10) == 0.05
        assert trace.rate(12) == 0.05
        assert trace.rate(13) == 0.0  # plateau
        assert trace.rate(17) == -0.05  # drain
        assert trace.last_cycle == 19

    def test_diurnal_sawtooth_alternates(self):
        trace = AvailabilityTrace.diurnal_sawtooth(
            period=4, amplitude=0.01, cycles=8
        )
        assert [trace.rate(c) for c in range(4)] == [-0.01, -0.01, 0.01, 0.01]

    def test_mass_exit_spreads_fraction(self):
        trace = AvailabilityTrace.mass_exit(at=5, fraction=0.4, over=2)
        assert trace.rate(5) == pytest.approx(-0.2)
        assert trace.rate(6) == pytest.approx(-0.2)
        assert trace.rate(7) == 0.0

    @pytest.mark.parametrize(
        "trace",
        [
            AvailabilityTrace.flash_crowd(start=2, ramp=3, hold=3, rate=0.05),
            AvailabilityTrace.diurnal_sawtooth(period=6, amplitude=0.02, cycles=15),
            AvailabilityTrace.mass_exit(at=4, fraction=0.3, over=2),
        ],
        ids=["flash-crowd", "diurnal", "mass-exit"],
    )
    def test_replays_identically_on_reference_and_bulk(self, trace):
        # Same trace, same seed: the reference model and its bulk twin
        # produce the same per-cycle live-count trajectory.
        def counts(backend):
            sim = build_simulation(
                RunSpec(
                    n=300,
                    slice_count=10,
                    view_size=6,
                    churn=AvailabilityChurn(trace),
                    backend=backend,
                    protocol="ranking",
                    seed=7,
                )
            )
            trajectory = []
            for _ in range(15):
                sim.run_cycle()
                trajectory.append(sim.live_count)
            return trajectory

        assert counts("reference") == counts("vectorized")

    def test_traces_compose_with_faults(self):
        trace = AvailabilityTrace.mass_exit(at=3, fraction=0.4, over=2)
        sim = build_simulation(
            RunSpec(
                n=300,
                slice_count=10,
                view_size=6,
                churn=AvailabilityChurn(trace),
                backend="vectorized",
                protocol="ranking",
                loss=0.2,
                delay="0.3:3",
                seed=7,
            )
        )
        sim.run(12)
        assert sim.live_count < 300
        assert sim.bus_stats.lost > 0


class TestServiceAndSpecKnobs:
    def test_reference_rejects_delay_and_partitions(self):
        for overrides in (
            dict(delay="0.5:2"),
            dict(partitions="0:5"),
            dict(loss=1.0),
        ):
            with pytest.raises(ValueError):
                build_simulation(RunSpec(n=50, **overrides))

    def test_reference_serves_plain_loss(self):
        sim = build_simulation(RunSpec(n=100, loss=0.3, seed=3))
        sim.run(3)
        assert sim.bus_stats.lost > 0

    def test_bulk_spec_round_trip(self):
        spec = RunSpec(
            n=100, backend="vectorized", loss=0.1, delay="0.2:2", partitions="1:2"
        )
        description = spec.describe()
        assert "loss=0.1" in description
        assert "delay=0.2:2" in description
        assert "partitions=1:2" in description

    def test_service_knobs(self):
        from repro.core.service import SlicingService

        with pytest.raises(ValueError):
            SlicingService(size=50, delay="0.5")
        service = SlicingService(
            size=150,
            slices=8,
            backend="vectorized",
            loss=0.1,
            delay="0.2:2",
            partition="1:2",
            seed=3,
        )
        service.run(5)
        assert service.simulation.bus_stats.lost > 0
