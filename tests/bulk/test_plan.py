"""The shared cycle-plan layer: scheduling properties and the
single-source guarantee (both bulk backends consume identical plans).
"""

import numpy as np
import pytest

from repro.bulk.plan import CyclePlan
from repro.core.slices import SlicePartition
from repro.engine.random_source import derive_seed
from repro.sharded import ShardedSimulation
from repro.vectorized.simulation import VectorSimulation


def make_plan(overlap=0.0, seed=0):
    cache = {}

    def rng_of(name):
        if name not in cache:
            cache[name] = np.random.default_rng(derive_seed(seed, name))
        return cache[name]

    return CyclePlan(rng_of, overlap)


class TestDeliveryRounds:
    """Flush scheduling: every event exactly once, receiver-disjoint
    rounds, receiver-sorted within a round (the shard-cut invariant)."""

    def test_rounds_partition_the_events(self):
        plan = make_plan(overlap=1.0)
        receivers = np.array([3, 7, 3, 3, 9, 7, 1], dtype=np.int64)
        rounds = plan.delivery_rounds(receivers)
        seen = np.concatenate(rounds)
        assert sorted(seen) == list(range(len(receivers)))
        # Round k holds each receiver's (k+1)-th message: sizes shrink.
        assert [len(r) for r in rounds] == sorted(
            [len(r) for r in rounds], reverse=True
        )

    def test_receivers_unique_and_sorted_within_round(self):
        plan = make_plan(overlap=1.0)
        receivers = np.repeat(np.arange(10, dtype=np.int64), 3)
        for round_ids in plan.delivery_rounds(receivers):
            in_round = receivers[round_ids]
            assert len(np.unique(in_round)) == len(in_round)
            assert np.array_equal(in_round, np.sort(in_round))

    def test_per_receiver_order_is_sequential(self):
        # Applying rounds in order must process each receiver's events
        # in one fixed sequence covering all of them.
        plan = make_plan(overlap=1.0)
        receivers = np.array([5, 5, 5, 5, 2, 2], dtype=np.int64)
        rounds = plan.delivery_rounds(receivers)
        events_of_five = [
            int(i) for r in rounds for i in r if receivers[i] == 5
        ]
        assert sorted(events_of_five) == [0, 1, 2, 3]
        assert len(rounds) == 4  # max multiplicity

    def test_empty(self):
        assert make_plan(overlap=1.0).delivery_rounds(np.empty(0)) == []


class TestWaves:
    def test_waves_cover_proposals_and_are_node_disjoint(self):
        plan = make_plan()
        rng = np.random.default_rng(3)
        initiators = np.arange(40, dtype=np.int64)
        targets = rng.integers(40, 80, size=40)
        extra = np.arange(40, dtype=np.int64)
        waves = plan.waves("ordering", initiators, targets, extra, 80)
        covered = np.concatenate([x for _a, _b, x in waves])
        assert sorted(covered) == list(range(40))
        for side_a, side_b, _x in waves:
            nodes = np.concatenate([side_a, side_b])
            assert len(np.unique(nodes)) == len(nodes)


class TestOverlapMasks:
    def test_none_draws_nothing_and_masks_are_false(self):
        plan = make_plan(overlap=0.0)
        req, ack = plan.exchange_overlap(100)
        assert not req.any() and not ack.any()
        order, overlapping = plan.upd_schedule(100)
        assert order is None and overlapping == 0

    def test_full_overlaps_everything(self):
        plan = make_plan(overlap=1.0)
        req, ack = plan.exchange_overlap(50)
        assert req.all() and ack.all()
        order, overlapping = plan.upd_schedule(50)
        assert overlapping == 50
        assert sorted(order) == list(range(50))

    def test_half_is_statistical(self):
        plan = make_plan(overlap=0.5, seed=5)
        req, ack = plan.exchange_overlap(4000)
        for mask in (req, ack):
            assert 0.4 < mask.mean() < 0.6

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError, match="probability"):
            make_plan(overlap=1.5)


class TestPlanTraceParity:
    """The operational meaning of "single-sourced schedule": a
    vectorized run and a sharded run of the same spec serve identical
    plan-step traces, cycle for cycle."""

    @staticmethod
    def traced(sim, cycles):
        traces = []
        original = sim._new_plan

        def recording():
            plan = original()
            traces.append(plan.steps)
            return plan

        sim._new_plan = recording
        sim.run(cycles)
        return traces

    @pytest.mark.parametrize("protocol", ["ranking", "mod-jk"])
    @pytest.mark.parametrize("concurrency", ["none", "half"])
    def test_traces_identical(self, protocol, concurrency):
        kwargs = dict(
            size=200,
            partition=SlicePartition.equal(5),
            protocol=protocol,
            view_size=6,
            seed=21,
            concurrency=concurrency,
        )
        vectorized = VectorSimulation(**kwargs)
        vector_traces = self.traced(vectorized, 5)
        with ShardedSimulation(workers=2, **kwargs) as sharded:
            sharded_traces = self.traced(sharded, 5)
        assert vector_traces == sharded_traces
        assert len(vector_traces) == 5
        assert all(trace for trace in vector_traces)

    @pytest.mark.parametrize("protocol", ["ranking", "mod-jk"])
    def test_fault_traces_identical(self, protocol):
        # The fault masks are plan points like any other: with loss,
        # delay and a partition window all firing, the recorded step
        # traces (including "faults:*" and "partition" steps) coincide
        # across backends.
        from repro.bulk.faults import FaultModel, PartitionWindow

        kwargs = dict(
            size=200,
            partition=SlicePartition.equal(5),
            protocol=protocol,
            view_size=6,
            seed=21,
            concurrency="half",
            faults=FaultModel(
                loss=0.2,
                delay=0.3,
                delay_max=3,
                partitions=(PartitionWindow(2, 2),),
            ),
        )
        vectorized = VectorSimulation(**kwargs)
        vector_traces = self.traced(vectorized, 6)
        with ShardedSimulation(workers=2, **kwargs) as sharded:
            sharded_traces = self.traced(sharded, 6)
        assert vector_traces == sharded_traces
        fault_steps = [
            step
            for trace in vector_traces
            for step in trace
            if step[0].startswith("faults:") or step[0] == "partition"
        ]
        assert fault_steps

    def test_rebalance_step_traced_identically(self):
        from repro.churn.models import RegularChurn

        kwargs = dict(
            size=200,
            partition=SlicePartition.equal(5),
            protocol="ranking",
            view_size=6,
            seed=21,
            churn=RegularChurn(rate=0.05, period=1),
            rebalance_every=2,
        )
        vectorized = VectorSimulation(**kwargs)
        vector_traces = self.traced(vectorized, 6)
        with ShardedSimulation(workers=2, **kwargs) as sharded:
            sharded_traces = self.traced(sharded, 6)
        assert vector_traces == sharded_traces
        # The compaction is a recorded plan step, not a backend-private
        # side effect: it shows up in the shared trace.
        rebalance_steps = [
            step
            for trace in vector_traces
            for step in trace
            if step[0] == "rebalance"
        ]
        assert rebalance_steps
        assert vectorized.rebalance_count == len(rebalance_steps)
