"""Property tests for the plan-level rebalancing machinery
(:mod:`repro.bulk.rebalance`): boundary coverage, permutation
bijectivity, occupancy accounting, trigger determinism, and the
in-place compaction's structural invariants.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bulk.plan import CyclePlan
from repro.bulk import rebalance
from repro.bulk.rebalance import (
    RebalancePlan,
    compact_state,
    live_load_ratio,
    migration_columns,
    occupancy_counts,
    rebalance_bounds,
    validate_rebalance_knobs,
)
from repro.vectorized.state import EMPTY, ArrayState

#: Shared profile: plenty of cases but bounded tier-1 runtime.
FAST = settings(max_examples=60, deadline=None)


@st.composite
def live_sets(draw):
    """``(old_size, live)``: a population high-water mark and an
    ascending, non-empty strict-or-full subset of its ids."""
    old_size = draw(st.integers(min_value=2, max_value=300))
    ids = draw(
        st.sets(
            st.integers(min_value=0, max_value=old_size - 1),
            min_size=1,
            max_size=old_size,
        )
    )
    return old_size, np.array(sorted(ids), dtype=np.int64)


class TestSentinelPin:
    def test_plan_layer_empty_matches_state_sentinel(self):
        # rebalance.py duplicates the sentinel to stay import-acyclic;
        # this is the pin that keeps the two definitions equal.
        assert rebalance.EMPTY == EMPTY


class TestRebalanceBounds:
    @given(data=live_sets(), workers=st.integers(1, 9), spare=st.integers(0, 64))
    @FAST
    def test_bounds_cover_exactly_the_live_rows(self, data, workers, spare):
        old_size, live = data
        live_total = len(live)
        capacity = old_size + spare
        bounds = rebalance_bounds(live_total, workers, capacity)
        assert len(bounds) == workers
        # Contiguous, non-overlapping, covering [0, capacity).
        assert bounds[0][0] == 0
        assert bounds[-1][1] == capacity
        for (_lo_a, hi_a), (lo_b, _hi_b) in zip(bounds, bounds[1:]):
            assert hi_a == lo_b
        assert all(lo <= hi for lo, hi in bounds)
        # After compaction the live rows are [0, live_total): each
        # shard's live share is its range clipped to that span, and the
        # shares partition it exactly and near-evenly.
        shares = [max(0, min(hi, live_total) - min(lo, live_total)) for lo, hi in bounds]
        assert sum(shares) == live_total
        assert max(shares) - min(shares) <= 1

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError, match="workers"):
            rebalance_bounds(10, 0, 20)


class TestPermutation:
    @given(data=live_sets())
    @FAST
    def test_id_map_is_a_bijection_onto_the_compacted_range(self, data):
        old_size, live = data
        plan = RebalancePlan(live=live, old_size=old_size, ratio=1.0)
        id_map = plan.id_map()
        assert len(id_map) == old_size
        # Live ids map onto exactly [0, len(live)), order-preserving.
        assert np.array_equal(id_map[live], np.arange(len(live)))
        # Dead ids all map to the purge sentinel.
        dead = np.setdiff1d(np.arange(old_size), live)
        assert (id_map[dead] == EMPTY).all()

    @given(data=live_sets(), shards=st.integers(1, 16))
    @FAST
    def test_occupancy_counts_partition_the_live_set(self, data, shards):
        old_size, live = data
        counts = occupancy_counts(live, old_size, shards)
        assert counts.sum() == len(live)
        assert (counts >= 0).all()
        assert len(counts) == max(1, min(shards, old_size))

    def test_live_load_ratio_extremes(self):
        assert live_load_ratio(np.array([5, 5, 5])) == 1.0
        assert live_load_ratio(np.array([10, 5])) == 2.0
        assert live_load_ratio(np.array([3, 0])) == float("inf")
        assert live_load_ratio(np.array([0, 0])) == 1.0
        assert live_load_ratio(np.array([], dtype=np.int64)) == 1.0


def build_state(rng, old_size, live, window=None):
    """An ArrayState with the given live set, random views (possibly
    pointing at dead rows or empty), and distinguishable column data."""
    view_size = 4
    state = ArrayState(view_size, capacity=old_size + 8)
    attributes = rng.random(old_size)
    values = rng.random(old_size)
    state.add_nodes(attributes, values)
    if window is not None:
        state.enable_window(window)
        state.win_bits[:old_size] = rng.integers(
            0, 256, size=state.win_bits[:old_size].shape
        )
        state.win_pos[:old_size] = rng.integers(0, window, size=old_size)
        state.win_len[:old_size] = rng.integers(0, window, size=old_size)
    view = rng.integers(-1, old_size, size=(old_size, view_size))
    state.view_ids[:old_size] = view
    ages = rng.integers(0, 9, size=(old_size, view_size)).astype(np.int32)
    ages[view == EMPTY] = 0
    state.view_ages[:old_size] = ages
    dead = np.setdiff1d(np.arange(old_size), live)
    state.remove_nodes(dead)
    return state


class TestCompactState:
    @given(data=live_sets(), seed=st.integers(0, 2**32 - 1))
    @FAST
    def test_compaction_structural_invariants(self, data, seed):
        old_size, live = data
        rng = np.random.default_rng(seed)
        state = build_state(rng, old_size, live)
        before = {
            name: getattr(state, name)[live].copy()
            for name in ("attribute", "value", "joined_at", "obs_le", "obs_total")
        }
        old_view = state.view_ids[live].copy()
        old_ages = state.view_ages[live].copy()
        plan = RebalancePlan(live=live.copy(), old_size=old_size, ratio=2.0)
        id_map = plan.id_map()
        compact_state(state, plan)

        new_size = len(live)
        assert state.size == new_size
        assert np.array_equal(state.live_ids(), np.arange(new_size))
        assert not state.maybe_dead_entries
        # Row data rode the permutation in live order.
        for name, expected in before.items():
            assert np.array_equal(getattr(state, name)[:new_size], expected), name
        # Views: live entries relabel through the bijection, dead
        # entries purge to EMPTY with age 0, nothing else changes.
        view = state.view_ids[:new_size]
        ages = state.view_ages[:new_size]
        was_live_entry = (old_view != EMPTY) & state_alive_lookup(old_view, live)
        assert np.array_equal(
            view[was_live_entry],
            id_map[old_view[was_live_entry]],
        )
        assert (view[~was_live_entry] == EMPTY).all()
        assert (ages[~was_live_entry] == 0).all()
        assert np.array_equal(ages[was_live_entry], old_ages[was_live_entry])
        # No surviving entry dangles: every occupied slot names a live row.
        occupied = view != EMPTY
        assert ((view[occupied] >= 0) & (view[occupied] < new_size)).all()

    @given(data=live_sets(), seed=st.integers(0, 2**32 - 1))
    @FAST
    def test_compaction_moves_window_columns(self, data, seed):
        old_size, live = data
        rng = np.random.default_rng(seed)
        state = build_state(rng, old_size, live, window=24)
        expected = {
            name: getattr(state, name)[live].copy()
            for name in ("win_bits", "win_pos", "win_len")
        }
        assert "win_bits" in migration_columns(state)
        compact_state(
            state, RebalancePlan(live=live.copy(), old_size=old_size, ratio=2.0)
        )
        for name, value in expected.items():
            assert np.array_equal(getattr(state, name)[: len(live)], value), name


def state_alive_lookup(view, live):
    """Boolean mask over view entries: entry names a live old id."""
    alive = np.zeros(max(int(view.max()), int(live.max())) + 2, dtype=bool)
    alive[live] = True
    return np.where(view != EMPTY, alive[np.where(view != EMPTY, view, 0)], False)


class TestTrigger:
    @staticmethod
    def make_plan(**knobs):
        return CyclePlan(lambda name: np.random.default_rng(0), 0.0, **knobs)

    @staticmethod
    def make_churned_state(old_size=64, kill=range(0, 24)):
        rng = np.random.default_rng(7)
        live = np.setdiff1d(np.arange(old_size), np.asarray(list(kill)))
        return build_state(rng, old_size, live), live

    def test_disabled_by_default(self):
        state, _live = self.make_churned_state()
        assert self.make_plan().rebalance(state, cycle=0) is None

    def test_nothing_dead_means_no_plan(self):
        state, _live = self.make_churned_state(kill=())
        plan = self.make_plan(rebalance_every=1, rebalance_threshold=1.01)
        assert plan.rebalance(state, 0) is None
        assert plan.steps == []

    def test_every_k_cycles(self):
        state, live = self.make_churned_state()
        plan = self.make_plan(rebalance_every=3)
        assert plan.rebalance(state, 0) is None
        assert plan.rebalance(state, 1) is None
        decision = plan.rebalance(state, 2)
        assert decision is not None
        assert np.array_equal(decision.live, live)
        assert decision.old_size == 64
        assert decision.new_size == len(live)
        assert ("rebalance", len(live)) in plan.steps

    def test_threshold_fires_on_skew_not_on_balance(self):
        # Dead rows concentrated at the bottom: heavy skew.
        skewed, _live = self.make_churned_state(kill=range(0, 24))
        # The same dead count striped evenly across the id space.
        striped, _live = self.make_churned_state(kill=range(0, 64, 3)[:24])
        plan = self.make_plan(rebalance_threshold=3.0)
        assert plan.rebalance(skewed, 0) is not None
        assert plan.rebalance(striped, 0) is None

    def test_decision_is_deterministic_and_rng_free(self):
        state, _live = self.make_churned_state()
        plan_a = self.make_plan(rebalance_every=1)
        plan_b = self.make_plan(rebalance_every=1)
        first = plan_a.rebalance(state, 0)
        second = plan_b.rebalance(state, 0)
        assert np.array_equal(first.live, second.live)
        assert (first.old_size, first.ratio) == (second.old_size, second.ratio)
        # The decision draws nothing: a plan whose rng factory explodes
        # still decides.
        def no_rng(name):
            raise AssertionError("rebalance decision must not draw")

        assert CyclePlan(no_rng, 0.0, rebalance_every=1).rebalance(state, 0) is not None

    @given(
        every=st.one_of(st.none(), st.integers(1, 10)),
        threshold=st.one_of(st.none(), st.floats(1.01, 100.0)),
    )
    @FAST
    def test_valid_knobs_accepted(self, every, threshold):
        validate_rebalance_knobs(every, threshold)

    @pytest.mark.parametrize(
        "knobs",
        [
            {"rebalance_every": 0},
            {"rebalance_every": -3},
            {"rebalance_every": True},
            {"rebalance_every": 2.5},
            {"rebalance_threshold": 1.0},
            {"rebalance_threshold": 0.5},
            {"rebalance_threshold": -2.0},
            {"rebalance_threshold": "1.5"},
            {"rebalance_threshold": True},
            {"rebalance_every": "3"},
        ],
    )
    def test_malformed_knobs_rejected(self, knobs):
        with pytest.raises(ValueError, match="rebalance"):
            validate_rebalance_knobs(
                knobs.get("rebalance_every"), knobs.get("rebalance_threshold")
            )
