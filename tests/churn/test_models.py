"""Unit + behaviour tests for the churn schedules."""

import pytest

from repro.churn.models import BurstChurn, NoChurn, RegularChurn, TraceChurn
from tests.conftest import make_ordering_sim


class TestNoChurn:
    def test_population_constant(self):
        sim = make_ordering_sim(n=50, churn=NoChurn())
        sim.run(10)
        assert sim.live_count == 50


class TestBurstChurn:
    def test_population_roughly_stable(self):
        # Equal leave/join rates keep n constant (up to carry rounding).
        churn = BurstChurn(rate=0.02, start=0, end=10)
        sim = make_ordering_sim(n=100, churn=churn)
        sim.run(10)
        assert 98 <= sim.live_count <= 102

    def test_inactive_outside_window(self):
        churn = BurstChurn(rate=0.5, start=5, end=6)
        sim = make_ordering_sim(n=100, churn=churn)
        sim.run(5)  # cycles 0..4: no churn yet
        ids_before = {node.node_id for node in sim.live_nodes()}
        assert ids_before == set(range(100))
        sim.run(1)  # cycle 5: churn fires
        ids_after = {node.node_id for node in sim.live_nodes()}
        assert ids_after != ids_before
        sim.run(5)  # cycles 6+: inactive again
        assert {node.node_id for node in sim.live_nodes()} == ids_after

    def test_fractional_rate_accumulates(self):
        # rate 0.004 at n=100 is 0.4 nodes/cycle: over 10 cycles,
        # exactly 4 leave events must have happened.
        churn = BurstChurn(rate=0.004, start=0, end=100)
        sim = make_ordering_sim(n=100, churn=churn)
        events = [churn.apply(sim) for _ in range(10)]
        total_departed = sum(len(event.departed) for event in events)
        assert total_departed == 4

    def test_correlated_default_policies(self):
        churn = BurstChurn(rate=0.05, start=0, end=5)
        sim = make_ordering_sim(
            n=100, churn=churn, attributes=[float(i) for i in range(100)]
        )
        max_before = max(node.attribute for node in sim.live_nodes())
        sim.run(5)
        attrs = sorted(node.attribute for node in sim.live_nodes())
        # Lowest attributes gone, arrivals above the previous maximum.
        assert attrs[0] > 0.0
        assert attrs[-1] > max_before

    def test_never_empties_system(self):
        churn = BurstChurn(rate=0.9, start=0, end=50)
        sim = make_ordering_sim(n=20, churn=churn)
        sim.run(20)
        assert sim.live_count >= 2

    def test_validation(self):
        with pytest.raises(ValueError):
            BurstChurn(rate=-0.1)
        with pytest.raises(ValueError):
            BurstChurn(start=10, end=5)


class TestRegularChurn:
    def test_fires_on_period_only(self):
        churn = RegularChurn(rate=0.1, period=10)
        sim = make_ordering_sim(n=100, churn=churn)
        event0 = churn.apply(sim)  # cycle 0: active
        assert event0.total > 0
        sim.clock.advance(1)
        event1 = churn.apply(sim)  # cycle 1: inactive
        assert event1.total == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RegularChurn(period=0)


class TestTraceChurn:
    def test_replays_schedule(self):
        schedule = {0: (2, [100.0]), 2: (0, [200.0, 300.0])}
        churn = TraceChurn(schedule)
        sim = make_ordering_sim(
            n=10, churn=churn, attributes=[float(i) for i in range(10)]
        )
        sim.run(3)
        attrs = sorted(node.attribute for node in sim.live_nodes())
        assert sim.live_count == 11  # 10 - 2 + 3
        assert 100.0 in attrs and 200.0 in attrs and 300.0 in attrs
        assert 0.0 not in attrs and 1.0 not in attrs  # lowest two left

    def test_quiet_cycles(self):
        churn = TraceChurn({5: (1, [])})
        sim = make_ordering_sim(n=10, churn=churn)
        sim.run(4)
        assert sim.live_count == 10
