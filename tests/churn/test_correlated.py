"""Unit tests for departure/arrival policies."""

from repro.churn.correlated import (
    CorrelatedArrivals,
    DistributionArrivals,
    HighestAttributeDepartures,
    LowestAttributeDepartures,
    UniformDepartures,
)
from repro.workloads.attributes import UniformAttributes
from tests.conftest import make_ordering_sim


def make_sim_with_attrs():
    return make_ordering_sim(n=20, attributes=[float(i) for i in range(20)])


class TestDepartures:
    def test_lowest_selected(self):
        sim = make_sim_with_attrs()
        chosen = LowestAttributeDepartures().select(sim, 3)
        attrs = sorted(sim.node(node_id).attribute for node_id in chosen)
        assert attrs == [0.0, 1.0, 2.0]

    def test_highest_selected(self):
        sim = make_sim_with_attrs()
        chosen = HighestAttributeDepartures().select(sim, 2)
        attrs = sorted(sim.node(node_id).attribute for node_id in chosen)
        assert attrs == [18.0, 19.0]

    def test_uniform_selects_requested_count(self):
        sim = make_sim_with_attrs()
        chosen = UniformDepartures().select(sim, 5)
        assert len(chosen) == 5
        assert len(set(chosen)) == 5

    def test_zero_count(self):
        sim = make_sim_with_attrs()
        assert LowestAttributeDepartures().select(sim, 0) == []
        assert UniformDepartures().select(sim, 0) == []

    def test_ties_broken_by_id(self):
        sim = make_ordering_sim(n=10, attributes=[1.0] * 10)
        chosen = LowestAttributeDepartures().select(sim, 2)
        assert chosen == [0, 1]


class TestArrivals:
    def test_correlated_above_current_max(self):
        sim = make_sim_with_attrs()
        values = CorrelatedArrivals().attributes(sim, 5)
        assert len(values) == 5
        assert min(values) > 19.0
        # Successive arrivals stack strictly upward.
        assert values == sorted(values)
        assert len(set(values)) == 5

    def test_distribution_arrivals(self):
        sim = make_sim_with_attrs()
        policy = DistributionArrivals(UniformAttributes(5.0, 6.0))
        values = policy.attributes(sim, 10)
        assert len(values) == 10
        assert all(5.0 <= v < 6.0 for v in values)

    def test_zero_count(self):
        sim = make_sim_with_attrs()
        assert CorrelatedArrivals().attributes(sim, 0) == []
