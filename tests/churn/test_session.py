"""Unit tests for the session-trace generator."""

import random

import pytest

from repro.churn.models import TraceChurn
from repro.churn.session import SessionTraceConfig, generate_session_trace
from tests.conftest import make_ordering_sim


class TestGenerateSessionTrace:
    def test_schedule_within_bounds(self):
        config = SessionTraceConfig(cycles=100, arrival_rate=1.0)
        schedule = generate_session_trace(config, random.Random(0))
        assert all(0 <= cycle < 100 for cycle in schedule)

    def test_joins_and_leaves_balance(self):
        # Every leave corresponds to a prior join (leaves can't exceed joins).
        config = SessionTraceConfig(cycles=200, arrival_rate=2.0)
        schedule = generate_session_trace(config, random.Random(1))
        joins = sum(len(attrs) for _leave, attrs in schedule.values())
        leaves = sum(leave for leave, _attrs in schedule.values())
        assert 0 < leaves <= joins

    def test_uptime_attribute_equals_session(self):
        config = SessionTraceConfig(cycles=50, arrival_rate=3.0, attribute_is_uptime=True)
        schedule = generate_session_trace(config, random.Random(2))
        for _leave, attrs in schedule.values():
            assert all(value >= 1.0 for value in attrs)

    def test_deterministic(self):
        config = SessionTraceConfig(cycles=100, arrival_rate=1.5)
        first = generate_session_trace(config, random.Random(7))
        second = generate_session_trace(config, random.Random(7))
        assert first == second

    def test_heavy_tail_shape(self):
        # With shape < 1 the session lengths must be heavy-tailed:
        # the max should dwarf the median.
        config = SessionTraceConfig(
            cycles=2000,
            arrival_rate=1.0,
            session_shape=0.5,
            session_scale=20.0,
            attribute_is_uptime=True,
        )
        schedule = generate_session_trace(config, random.Random(3))
        sessions = [v for _l, attrs in schedule.values() for v in attrs]
        sessions.sort()
        median = sessions[len(sessions) // 2]
        assert sessions[-1] > 10 * median

    def test_invalid_cycles(self):
        with pytest.raises(ValueError):
            generate_session_trace(SessionTraceConfig(cycles=0), random.Random(0))


class TestTraceIntegration:
    def test_simulation_runs_on_trace(self):
        config = SessionTraceConfig(cycles=30, arrival_rate=1.0)
        schedule = generate_session_trace(config, random.Random(5))
        sim = make_ordering_sim(n=50, churn=TraceChurn(schedule))
        sim.run(30)
        assert sim.live_count >= 2
