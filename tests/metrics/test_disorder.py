"""Unit tests for GDM / SDM and rank computations."""

import pytest

from repro.core.slices import SlicePartition
from repro.metrics.disorder import (
    attribute_ranks,
    global_disorder,
    per_node_slice_error,
    slice_disorder,
    true_slice_indices,
    value_ranks,
)


class _FakeSlicer:
    def __init__(self, value, slice_index):
        self.value = value
        self.slice_index = slice_index


class _FakeNode:
    def __init__(self, node_id, attribute, value, slice_index=None, alive=True):
        self.node_id = node_id
        self.attribute = attribute
        self.alive = alive
        self._value = value
        self._slice_index = slice_index

    @property
    def value(self):
        return self._value

    @property
    def slice_index(self):
        return self._slice_index


def make_nodes(attrs_values):
    return [
        _FakeNode(i, attr, value) for i, (attr, value) in enumerate(attrs_values)
    ]


class TestRanks:
    def test_attribute_ranks_paper_example(self):
        # a1=50, a2=120, a3=25 -> alpha = 2, 3, 1 (1-based).
        nodes = make_nodes([(50, 0.0), (120, 0.0), (25, 0.0)])
        ranks = attribute_ranks(nodes)
        assert ranks == {0: 2, 1: 3, 2: 1}

    def test_value_ranks_paper_example(self):
        # r1=0.85, r2=0.1, r3=0.35 -> rho = 3, 1, 2.
        nodes = make_nodes([(0, 0.85), (0, 0.1), (0, 0.35)])
        ranks = value_ranks(nodes)
        assert ranks == {0: 3, 1: 1, 2: 2}

    def test_ties_broken_by_id(self):
        nodes = make_nodes([(5, 0.5), (5, 0.5)])
        assert attribute_ranks(nodes) == {0: 1, 1: 2}
        assert value_ranks(nodes) == {0: 1, 1: 2}

    def test_dead_nodes_excluded(self):
        nodes = make_nodes([(1, 0.1), (2, 0.2), (3, 0.3)])
        nodes[1].alive = False
        assert set(attribute_ranks(nodes)) == {0, 2}


class TestGlobalDisorder:
    def test_zero_when_sorted(self):
        nodes = make_nodes([(1, 0.1), (2, 0.2), (3, 0.3)])
        assert global_disorder(nodes) == 0.0

    def test_paper_example_value(self):
        # alpha=(2,3,1), rho=(3,1,2): GDM = ((2-3)^2+(3-1)^2+(1-2)^2)/3 = 2.
        nodes = make_nodes([(50, 0.85), (120, 0.1), (25, 0.35)])
        assert global_disorder(nodes) == pytest.approx(2.0)

    def test_reversed_is_maximal(self):
        ordered = make_nodes([(i, i / 10) for i in range(1, 6)])
        reversed_nodes = make_nodes([(i, (6 - i) / 10) for i in range(1, 6)])
        assert global_disorder(reversed_nodes) > global_disorder(ordered)

    def test_empty(self):
        assert global_disorder([]) == 0.0


class TestSliceDisorder:
    def test_zero_when_every_node_knows_its_slice(self):
        partition = SlicePartition.equal(2)
        # 4 nodes: true slices 0,0,1,1 by attribute rank.
        nodes = [
            _FakeNode(0, 1.0, 0.2, slice_index=0),
            _FakeNode(1, 2.0, 0.4, slice_index=0),
            _FakeNode(2, 3.0, 0.7, slice_index=1),
            _FakeNode(3, 4.0, 0.9, slice_index=1),
        ]
        assert slice_disorder(nodes, partition) == 0.0

    def test_counts_index_distance(self):
        partition = SlicePartition.equal(4)
        # One node, rank 1/1=1.0 -> true slice 3; believes slice 0.
        nodes = [_FakeNode(0, 1.0, 0.1, slice_index=0)]
        assert slice_disorder(nodes, partition) == pytest.approx(3.0)

    def test_falls_back_to_value_when_no_slice_index(self):
        partition = SlicePartition.equal(4)
        nodes = [_FakeNode(0, 1.0, 0.1, slice_index=None)]
        assert slice_disorder(nodes, partition) == pytest.approx(3.0)

    def test_example_from_paper_text(self):
        # "if node i belongs to the 1st slice while it thinks it belongs
        # to the 3rd slice then the distance for node i is |1-3| = 2".
        partition = SlicePartition.equal(10)
        nodes = [
            _FakeNode(0, 1.0, 0.25, slice_index=2),   # rank 1/2 -> slice 4
            _FakeNode(1, 2.0, 0.95, slice_index=9),   # rank 2/2 -> slice 9
        ]
        errors = per_node_slice_error(nodes, partition)
        assert errors[0] == pytest.approx(2.0)
        assert errors[1] == 0.0

    def test_true_slice_indices(self):
        partition = SlicePartition.equal(2)
        nodes = make_nodes([(10, 0.0), (20, 0.0), (30, 0.0), (40, 0.0)])
        truth = true_slice_indices(nodes, partition)
        assert truth == {0: 0, 1: 0, 2: 1, 3: 1}

    def test_skewed_attributes_irrelevant(self):
        # Slicing is rank-based: scaling attributes must not change SDM.
        partition = SlicePartition.equal(2)
        base = [
            _FakeNode(0, 1.0, 0.9, slice_index=1),
            _FakeNode(1, 2.0, 0.1, slice_index=0),
        ]
        scaled = [
            _FakeNode(0, 1000.0, 0.9, slice_index=1),
            _FakeNode(1, 2000000.0, 0.1, slice_index=0),
        ]
        assert slice_disorder(base, partition) == slice_disorder(scaled, partition)
