"""Unit tests for time series and collectors."""

import pytest

from repro.metrics.collectors import (
    DistinctValueCollector,
    FunctionCollector,
    GlobalDisorderCollector,
    MessageCountCollector,
    PopulationCollector,
    SliceDisorderCollector,
    TimeSeries,
    UnsuccessfulSwapCollector,
)
from tests.conftest import make_ordering_sim


class TestTimeSeries:
    def test_append_and_iterate(self):
        series = TimeSeries("x")
        series.append(0, 10.0)
        series.append(1, 5.0)
        assert list(series) == [(0, 10.0), (1, 5.0)]
        assert len(series) == 2

    def test_final_min_max(self):
        series = TimeSeries("x")
        for t, v in enumerate([3.0, 1.0, 2.0]):
            series.append(t, v)
        assert series.final == 2.0
        assert series.minimum == 1.0
        assert series.maximum == 3.0

    def test_empty_series_raises(self):
        with pytest.raises(ValueError):
            TimeSeries("x").final

    def test_at_exact(self):
        series = TimeSeries("x")
        series.append(5, 1.0)
        assert series.at(5) == 1.0
        with pytest.raises(KeyError):
            series.at(6)

    def test_value_at_or_before(self):
        series = TimeSeries("x")
        series.append(0, 1.0)
        series.append(10, 2.0)
        assert series.value_at_or_before(5) == 1.0
        assert series.value_at_or_before(10) == 2.0
        with pytest.raises(KeyError):
            series.value_at_or_before(-1)

    def test_first_time_below(self):
        series = TimeSeries("x")
        for t, v in enumerate([10.0, 6.0, 3.0, 1.0]):
            series.append(t, v)
        assert series.first_time_below(5.0) == 2
        assert series.first_time_below(0.5) is None


class TestCollectors:
    def test_interval_sampling(self):
        sim = make_ordering_sim(n=20)
        collector = PopulationCollector(every=2)
        sim.run(6, collectors=[collector])
        assert collector.series.times == [0, 2, 4, 6]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            PopulationCollector(every=0)

    def test_sdm_collector_decreases(self):
        sim = make_ordering_sim(n=60)
        collector = SliceDisorderCollector(sim.partition)
        sim.run(20, collectors=[collector])
        assert collector.series.final < collector.series.values[0]

    def test_gdm_collector(self):
        sim = make_ordering_sim(n=60)
        collector = GlobalDisorderCollector()
        sim.run(20, collectors=[collector])
        assert collector.series.final < collector.series.values[0]

    def test_message_count_monotone(self):
        sim = make_ordering_sim(n=30)
        collector = MessageCountCollector()
        sim.run(5, collectors=[collector])
        values = collector.series.values
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_distinct_values_constant_without_concurrency(self):
        sim = make_ordering_sim(n=50, concurrency="none")
        collector = DistinctValueCollector()
        sim.run(10, collectors=[collector])
        assert collector.series.final == collector.series.values[0]

    def test_unsuccessful_swap_collector_zero_when_atomic(self):
        sim = make_ordering_sim(n=50, concurrency="none")
        collector = UnsuccessfulSwapCollector()
        sim.run(10, collectors=[collector])
        assert collector.series.maximum == 0.0

    def test_unsuccessful_swap_collector_positive_when_full(self):
        sim = make_ordering_sim(n=50, concurrency="full")
        collector = UnsuccessfulSwapCollector()
        sim.run(10, collectors=[collector])
        assert collector.series.maximum > 0.0

    def test_function_collector(self):
        sim = make_ordering_sim(n=20)
        collector = FunctionCollector("live", lambda s: s.live_count)
        sim.run(2, collectors=[collector])
        assert collector.series.final == 20.0
