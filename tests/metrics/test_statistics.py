"""Unit tests for the statistics helpers."""

import pytest

from repro.metrics.statistics import (
    mean_confidence_interval,
    summarize,
    wald_interval,
    z_value,
)


class TestSummarize:
    def test_basic(self):
        stats = summarize([1.0, 2.0, 3.0, 4.0])
        assert stats.count == 4
        assert stats.mean == pytest.approx(2.5)
        assert stats.minimum == 1.0
        assert stats.maximum == 4.0
        assert stats.median == pytest.approx(2.5)

    def test_odd_median(self):
        assert summarize([3.0, 1.0, 2.0]).median == 2.0

    def test_std(self):
        stats = summarize([2.0, 4.0])
        assert stats.std == pytest.approx(1.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestZValue:
    def test_95(self):
        assert z_value(0.95) == pytest.approx(1.959964, abs=1e-5)

    def test_99(self):
        assert z_value(0.99) == pytest.approx(2.575829, abs=1e-5)

    def test_bounds(self):
        with pytest.raises(ValueError):
            z_value(0.0)
        with pytest.raises(ValueError):
            z_value(1.0)


class TestWaldInterval:
    def test_symmetric_at_half(self):
        low, high = wald_interval(0.5, 100)
        assert low == pytest.approx(0.5 - 1.959964 * 0.05, abs=1e-5)
        assert high == pytest.approx(0.5 + 1.959964 * 0.05, abs=1e-5)

    def test_clamped_to_unit_interval(self):
        low, high = wald_interval(0.01, 10)
        assert low == 0.0
        low, high = wald_interval(0.99, 10)
        assert high == 1.0

    def test_narrows_with_samples(self):
        narrow = wald_interval(0.5, 10_000)
        wide = wald_interval(0.5, 100)
        assert narrow[1] - narrow[0] < wide[1] - wide[0]

    def test_degenerate_estimate(self):
        assert wald_interval(0.0, 100) == (0.0, 0.0)
        assert wald_interval(1.0, 100) == (1.0, 1.0)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            wald_interval(0.5, 0)
        with pytest.raises(ValueError):
            wald_interval(1.5, 10)


class TestMeanConfidenceInterval:
    def test_contains_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = mean_confidence_interval(values)
        assert low < 3.0 < high

    def test_single_value(self):
        assert mean_confidence_interval([2.0]) == (2.0, 2.0)
