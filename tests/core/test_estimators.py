"""Unit tests for the rank estimators."""

import pytest

from repro.core.estimators import CumulativeRankEstimator, SlidingWindowRankEstimator


class TestCumulativeRankEstimator:
    def test_no_samples_no_estimate(self):
        assert CumulativeRankEstimator().estimate() is None

    def test_fraction_of_lower(self):
        estimator = CumulativeRankEstimator()
        for outcome in (True, True, False, True):
            estimator.observe(outcome)
        assert estimator.estimate() == pytest.approx(0.75)
        assert estimator.sample_count == 4

    def test_all_lower(self):
        estimator = CumulativeRankEstimator()
        for _ in range(5):
            estimator.observe(True)
        assert estimator.estimate() == 1.0

    def test_none_lower(self):
        estimator = CumulativeRankEstimator()
        for _ in range(5):
            estimator.observe(False)
        assert estimator.estimate() == 0.0

    def test_reset(self):
        estimator = CumulativeRankEstimator()
        estimator.observe(True)
        estimator.reset()
        assert estimator.estimate() is None
        assert estimator.sample_count == 0

    def test_old_samples_keep_weight(self):
        # The cumulative estimator never forgets: after many early
        # "lower" samples, later "higher" samples shift it only slowly.
        estimator = CumulativeRankEstimator()
        for _ in range(100):
            estimator.observe(True)
        for _ in range(10):
            estimator.observe(False)
        assert estimator.estimate() == pytest.approx(100 / 110)


class TestSlidingWindowRankEstimator:
    def test_no_samples_no_estimate(self):
        assert SlidingWindowRankEstimator(4).estimate() is None

    def test_fraction_before_window_full(self):
        estimator = SlidingWindowRankEstimator(10)
        estimator.observe(True)
        estimator.observe(False)
        assert estimator.estimate() == pytest.approx(0.5)
        assert estimator.sample_count == 2

    def test_eviction(self):
        estimator = SlidingWindowRankEstimator(3)
        for outcome in (True, True, True):
            estimator.observe(outcome)
        assert estimator.estimate() == 1.0
        estimator.observe(False)  # evicts one True
        assert estimator.estimate() == pytest.approx(2 / 3)
        estimator.observe(False)
        estimator.observe(False)
        assert estimator.estimate() == 0.0

    def test_sample_count_capped_at_window(self):
        estimator = SlidingWindowRankEstimator(5)
        for _ in range(20):
            estimator.observe(True)
        assert estimator.sample_count == 5

    def test_adapts_to_population_shift(self):
        # The motivating property: after a shift, the estimate tracks
        # the *recent* stream regardless of history length.
        estimator = SlidingWindowRankEstimator(10)
        for _ in range(1000):
            estimator.observe(True)
        for _ in range(10):
            estimator.observe(False)
        assert estimator.estimate() == 0.0

    def test_running_sum_consistency(self):
        # The O(1) running sum must always equal a recount of the bits.
        estimator = SlidingWindowRankEstimator(7)
        import random

        rng = random.Random(3)
        for _ in range(500):
            estimator.observe(rng.random() < 0.6)
            expected = sum(estimator._bits) / len(estimator._bits)
            assert estimator.estimate() == pytest.approx(expected)

    def test_memory_bits(self):
        assert SlidingWindowRankEstimator(10_000).memory_bits == 10_000

    def test_reset(self):
        estimator = SlidingWindowRankEstimator(4)
        estimator.observe(True)
        estimator.reset()
        assert estimator.estimate() is None
        assert estimator.sample_count == 0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            SlidingWindowRankEstimator(0)
