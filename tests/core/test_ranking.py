"""Unit + behaviour tests for the ranking protocol (Figure 5)."""


from repro.core.protocol import MSG_UPD
from repro.core.ranking import RankingProtocol
from repro.core.slices import SlicePartition
from repro.engine.network import Message
from repro.metrics.disorder import slice_disorder, true_slice_indices
from repro.sampling.uniform import UniformOracleSampler
from tests.conftest import make_ranking_sim


class _StubCtx:
    """Minimal context for exercising the passive thread in isolation."""

    def __init__(self):
        self.sent = []
        self.now = 0

    def rng(self, name):
        import random

        return random.Random(0)

    def send(self, sender, receiver, kind, payload):
        self.sent.append((sender, receiver, kind, payload))


class _StubNode:
    def __init__(self, node_id, attribute):
        self.node_id = node_id
        self.attribute = attribute


class TestPassiveThread:
    def test_upd_updates_estimate(self):
        partition = SlicePartition.equal(4)
        protocol = RankingProtocol(partition, initial_value=0.5)
        node = _StubNode(1, attribute=10.0)
        ctx = _StubCtx()
        protocol.on_message(node, Message(2, 1, MSG_UPD, (5.0,), 0), ctx)
        assert protocol.rank_estimate == 1.0  # one sample, lower
        protocol.on_message(node, Message(3, 1, MSG_UPD, (20.0,), 0), ctx)
        assert protocol.rank_estimate == 0.5
        assert protocol.updates_received == 2

    def test_equal_attribute_counts_as_lower(self):
        # Figure 5 line 18 uses <=.
        partition = SlicePartition.equal(4)
        protocol = RankingProtocol(partition, initial_value=0.5)
        node = _StubNode(1, attribute=10.0)
        protocol.on_message(node, Message(2, 1, MSG_UPD, (10.0,), 0), _StubCtx())
        assert protocol.rank_estimate == 1.0

    def test_non_upd_messages_ignored(self):
        partition = SlicePartition.equal(4)
        protocol = RankingProtocol(partition, initial_value=0.5)
        node = _StubNode(1, attribute=10.0)
        protocol.on_message(node, Message(2, 1, "REQ", (0.5, 1.0, True), 0), _StubCtx())
        assert protocol.updates_received == 0
        assert protocol.rank_estimate == 0.5

    def test_slice_follows_estimate(self):
        partition = SlicePartition.equal(4)
        protocol = RankingProtocol(partition, initial_value=0.1)
        node = _StubNode(1, attribute=10.0)
        ctx = _StubCtx()
        for _ in range(10):
            protocol.on_message(node, Message(2, 1, MSG_UPD, (5.0,), 0), ctx)
        assert protocol.slice_index == 3


class TestActiveThread:
    def test_sends_two_updates_per_cycle(self):
        sim = make_ranking_sim(n=30)
        sim.run(1)
        # Every node sends exactly 2 UPD messages per cycle.
        assert sim.bus_stats.per_kind["UPD"] == 2 * 30

    def test_view_entries_feed_estimator(self):
        sim = make_ranking_sim(n=30, view_size=8)
        sim.run(1)
        for node in sim.live_nodes():
            assert node.slicer.sample_count >= 8

    def test_estimates_stay_in_unit_interval(self):
        sim = make_ranking_sim(n=50)
        sim.run(20)
        for node in sim.live_nodes():
            assert 0.0 <= node.value <= 1.0


class TestConvergence:
    def test_sdm_decreases(self):
        sim = make_ranking_sim(n=100, slice_count=4)
        partition = sim.partition
        initial = slice_disorder(sim.live_nodes(), partition)
        sim.run(40)
        assert slice_disorder(sim.live_nodes(), partition) < initial / 3

    def test_rank_estimates_approach_truth(self):
        sim = make_ranking_sim(n=100)
        sim.run(80)
        nodes = sorted(sim.live_nodes(), key=lambda n: (n.attribute, n.node_id))
        n = len(nodes)
        errors = [abs(node.value - (k + 1) / n) for k, node in enumerate(nodes)]
        assert sum(errors) / n < 0.06

    def test_eventually_exact_with_uniform_sampler(self):
        sim = make_ranking_sim(
            n=60,
            slice_count=4,
            sampler_factory=lambda nid: UniformOracleSampler(nid, 8),
            seed=3,
        )
        sim.run(250)
        partition = sim.partition
        truth = true_slice_indices(sim.live_nodes(), partition)
        wrong = sum(
            1 for node in sim.live_nodes() if node.slice_index != truth[node.node_id]
        )
        # "guarantees eventually perfect assignment in a static
        # environment" — allow a node or two still near a boundary.
        assert wrong <= 2

    def test_boundary_bias_targets_boundary_nodes(self):
        # With bias on, nodes near slice boundaries receive more UPDs.
        sim = make_ranking_sim(n=100, slice_count=4, seed=5)
        partition = sim.partition
        sim.run(60)
        truth = true_slice_indices(sim.live_nodes(), partition)
        nodes = sim.live_nodes()
        n = len(nodes)
        ranks = {
            node.node_id: rank / n
            for rank, node in enumerate(
                sorted(nodes, key=lambda x: (x.attribute, x.node_id)), start=1
            )
        }
        near = [
            node.slicer.updates_received
            for node in nodes
            if partition.boundary_distance(ranks[node.node_id]) < 0.03
        ]
        far = [
            node.slicer.updates_received
            for node in nodes
            if partition.boundary_distance(ranks[node.node_id]) > 0.08
        ]
        assert near and far
        assert sum(near) / len(near) > sum(far) / len(far)

    def test_window_variant_converges_too(self):
        sim = make_ranking_sim(n=100, slice_count=4, window=500)
        partition = sim.partition
        initial = slice_disorder(sim.live_nodes(), partition)
        sim.run(40)
        assert slice_disorder(sim.live_nodes(), partition) < initial / 3

    def test_concurrency_harmless_for_ranking(self):
        # One-way messages: overlap cannot invalidate anything.
        partition = SlicePartition.equal(4)
        finals = {}
        for concurrency in ("none", "full"):
            from repro.engine.simulator import CycleSimulation

            sim = CycleSimulation(
                size=100,
                partition=partition,
                slicer_factory=lambda: RankingProtocol(partition),
                view_size=8,
                concurrency=concurrency,
                seed=13,
            )
            sim.run(40)
            finals[concurrency] = slice_disorder(sim.live_nodes(), partition)
        ratio = finals["full"] / max(finals["none"], 1e-9)
        assert 0.5 < ratio < 2.0
