"""Unit + behaviour tests for the SlicingService facade."""

import pytest

from repro.core.service import SliceChange, SlicingService
from repro.core.slices import SlicePartition


class TestConstruction:
    def test_equal_slices_from_int(self):
        service = SlicingService(size=50, slices=5, seed=1)
        assert len(service.partition) == 5

    def test_proportions(self):
        service = SlicingService(size=50, slices=[0.5, 0.3, 0.2], seed=1)
        widths = [s.width for s in service.partition]
        assert widths == pytest.approx([0.5, 0.3, 0.2])

    def test_partition_passthrough(self):
        partition = SlicePartition.equal(3)
        service = SlicingService(size=50, slices=partition, seed=1)
        assert service.partition is partition

    def test_bad_proportions(self):
        with pytest.raises(ValueError):
            SlicingService(size=50, slices=[0.5, 0.2], seed=1)
        with pytest.raises(ValueError):
            SlicingService(size=50, slices=[0.5, 0.5, -0.0], seed=1)

    def test_bad_algorithm(self):
        with pytest.raises(ValueError):
            SlicingService(size=50, algorithm="oracle", seed=1)

    @pytest.mark.parametrize("algorithm", ["ranking", "ranking-window", "ordering"])
    def test_all_algorithms_run(self, algorithm):
        service = SlicingService(size=50, slices=4, algorithm=algorithm, seed=1)
        service.run(5)
        assert service.cycle == 5


class TestQueries:
    def test_members_partition_the_population(self):
        service = SlicingService(size=60, slices=4, seed=2)
        service.run(20)
        all_members = []
        for index in range(4):
            all_members.extend(service.members(index))
        assert sorted(all_members) == sorted(
            node.node_id for node in service.simulation.live_nodes()
        )

    def test_members_bad_index(self):
        service = SlicingService(size=20, slices=2, seed=2)
        with pytest.raises(IndexError):
            service.members(5)

    def test_slice_sizes_sum_to_population(self):
        service = SlicingService(size=60, slices=4, seed=2)
        service.run(10)
        assert sum(service.slice_sizes()) == 60

    def test_accuracy_improves(self):
        service = SlicingService(size=100, slices=4, seed=3)
        early = service.accuracy()
        service.run(60)
        assert service.accuracy() > early
        assert service.accuracy() > 0.8

    def test_disorder_decreases(self):
        service = SlicingService(size=100, slices=4, seed=3)
        initial = service.disorder()
        service.run(40)
        assert service.disorder() < initial / 2

    def test_confident_fraction_grows(self):
        service = SlicingService(size=100, slices=4, seed=3)
        service.run(5)
        early = service.confident_fraction()
        service.run(80)
        assert service.confident_fraction() >= early
        assert service.confident_fraction() > 0.5

    def test_confident_fraction_zero_for_ordering(self):
        service = SlicingService(size=50, slices=4, algorithm="ordering", seed=3)
        service.run(10)
        assert service.confident_fraction() == 0.0


class TestMembership:
    def test_join_and_leave(self):
        service = SlicingService(size=30, slices=3, seed=4)
        node_id = service.join(attribute=99.0)
        assert service.size == 31
        assert service.slice_of(node_id) is not None
        service.leave(node_id)
        assert service.size == 30

    def test_joiner_finds_high_slice(self):
        service = SlicingService(
            size=60,
            slices=3,
            seed=4,
            attributes=[float(i) for i in range(60)],
        )
        service.run(30)
        node_id = service.join(attribute=1000.0)  # above everyone
        service.run(40)
        assert service.slice_of(node_id) == 2


class TestSubscriptions:
    def test_changes_fire_on_reassignment(self):
        service = SlicingService(size=60, slices=4, seed=5)
        changes = []
        service.subscribe(changes.append)
        service.run(30)
        assert changes  # convergence implies reassignments
        first = changes[0]
        assert isinstance(first, SliceChange)
        assert first.old_slice != first.new_slice

    def test_no_changes_after_convergence(self):
        service = SlicingService(size=40, slices=2, seed=5)
        service.run(120)
        late_changes = []
        service.subscribe(late_changes.append)
        service.run(5)
        # A converged static system reassigns (almost) nobody.
        assert len(late_changes) <= 2
