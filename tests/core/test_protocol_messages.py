"""Wire-level conformance with the paper's pseudocode.

These tests pin down the exact message contents and ordering of
Figures 2 and 5 — e.g. that an ordering ACK carries the responder's
*pre-swap* random value (Figure 2 sends the ACK on line 16, before the
swap on lines 17-18), which is what makes the exchange a true swap.
"""

from repro.core.ordering import OrderingProtocol
from repro.core.protocol import MSG_ACK, MSG_REQ, MSG_UPD
from repro.core.ranking import RankingProtocol
from repro.core.slices import SlicePartition
from repro.engine.network import Message


class _RecordingCtx:
    """Context stub that records sends and supports swap accounting."""

    def __init__(self):
        self.sent = []
        self.now = 0

        class _Stats:
            def __init__(self):
                self.intended = 0
                self.unsuccessful = 0

            def note_intended_swap(self):
                self.intended += 1

            def note_unsuccessful_swap(self):
                self.unsuccessful += 1

        self.bus_stats = _Stats()

        class _Trace:
            def record(self, *args, **kwargs):
                pass

        self.trace = _Trace()

    def send(self, sender, receiver, kind, payload):
        self.sent.append((sender, receiver, kind, payload))

    def rng(self, name):
        import random

        return random.Random(0)


class _StubNode:
    def __init__(self, node_id, attribute, slicer):
        self.node_id = node_id
        self.attribute = attribute
        self.slicer = slicer


class TestOrderingWireFormat:
    def _make(self, attribute, value):
        partition = SlicePartition.equal(4)
        protocol = OrderingProtocol(partition, initial_value=value)
        return _StubNode(1, attribute, protocol), protocol

    def test_req_triggers_ack_with_preswap_value(self):
        # Responder: a=10, r=0.8.  REQ from a misplaced sender
        # (a=20, r=0.2): responder must swap DOWN to 0.2, but the ACK
        # must carry the pre-swap 0.8 so the requester can take it.
        node, protocol = self._make(attribute=10.0, value=0.8)
        ctx = _RecordingCtx()
        req = Message(2, 1, MSG_REQ, (0.2, 20.0, True), 0)
        protocol.on_message(node, req, ctx)

        assert protocol.value == 0.2  # responder swapped
        assert len(ctx.sent) == 1
        sender, receiver, kind, payload = ctx.sent[0]
        assert (sender, receiver, kind) == (1, 2, MSG_ACK)
        r_pre, attribute, intended, swapped = payload
        assert r_pre == 0.8  # pre-swap value, per Figure 2 line 16
        assert attribute == 10.0
        assert intended is True
        assert swapped is True

    def test_req_not_misplaced_no_swap_but_still_acks(self):
        node, protocol = self._make(attribute=10.0, value=0.2)
        ctx = _RecordingCtx()
        req = Message(2, 1, MSG_REQ, (0.8, 20.0, True), 0)
        protocol.on_message(node, req, ctx)

        assert protocol.value == 0.2  # correctly ordered, no swap
        _s, _r, kind, payload = ctx.sent[0]
        assert kind == MSG_ACK
        assert payload[0] == 0.2
        assert payload[3] is False  # swapped flag

    def test_ack_completes_the_swap(self):
        node, protocol = self._make(attribute=20.0, value=0.2)
        ctx = _RecordingCtx()
        ack = Message(2, 1, MSG_ACK, (0.8, 10.0, True, True), 0)
        protocol.on_message(node, ack, ctx)
        assert protocol.value == 0.8
        assert ctx.sent == []  # ACKs are terminal
        assert ctx.bus_stats.unsuccessful == 0

    def test_stale_ack_counts_unsuccessful(self):
        # The requester's value changed meanwhile such that the
        # exchange no longer applies on its side.
        node, protocol = self._make(attribute=20.0, value=0.9)
        ctx = _RecordingCtx()
        ack = Message(2, 1, MSG_ACK, (0.8, 10.0, True, True), 0)
        protocol.on_message(node, ack, ctx)
        assert protocol.value == 0.9  # no swap: 0.9 > 0.8 is ordered
        assert ctx.bus_stats.unsuccessful == 1

    def test_one_sided_responder_failure_counts_once(self):
        # responder_swapped=False and requester predicate holds: the
        # requester still applies its side, and the exchange is counted
        # unsuccessful exactly once.
        node, protocol = self._make(attribute=20.0, value=0.2)
        ctx = _RecordingCtx()
        ack = Message(2, 1, MSG_ACK, (0.8, 10.0, True, False), 0)
        protocol.on_message(node, ack, ctx)
        assert ctx.bus_stats.unsuccessful == 1


class TestRankingWireFormat:
    def test_upd_payload_is_just_the_attribute(self):
        partition = SlicePartition.equal(4)
        protocol = RankingProtocol(partition, initial_value=0.5)
        node = _StubNode(1, 10.0, protocol)
        ctx = _RecordingCtx()
        protocol.on_message(node, Message(2, 1, MSG_UPD, (3.0,), 0), ctx)
        # One-way: receiving an UPD never generates traffic.
        assert ctx.sent == []
        assert protocol.rank_estimate == 1.0

    def test_req_constant_matches_paper(self):
        assert MSG_REQ == "REQ"
        assert MSG_ACK == "ACK"
        assert MSG_UPD == "UPD"
