"""Unit + behaviour tests for the JK / mod-JK ordering protocols."""

import pytest

from repro.core.ordering import (
    SELECTION_MAX_GAIN,
    SELECTION_RANDOM,
    SELECTION_RANDOM_MISPLACED,
    OrderingProtocol,
    exchange_gain,
    is_misplaced,
    local_disorder,
    local_sequences,
    pairwise_gain,
)
from repro.core.slices import SlicePartition
from repro.metrics.disorder import global_disorder
from tests.conftest import make_ordering_sim


class TestMisplacementPredicate:
    def test_paper_example(self):
        # Nodes 1..3: a=(50,120,25), r=(0.85,0.1,0.35).  Node 1 vs 2:
        # a1<a2 but r1>r2 -> misplaced.
        assert is_misplaced(50, 0.85, 120, 0.1)

    def test_ordered_pair_not_misplaced(self):
        assert not is_misplaced(50, 0.1, 120, 0.85)

    def test_equal_attributes_not_misplaced(self):
        assert not is_misplaced(5, 0.1, 5, 0.9)

    def test_equal_values_not_misplaced(self):
        assert not is_misplaced(1, 0.5, 2, 0.5)

    def test_symmetry(self):
        assert is_misplaced(1, 0.9, 2, 0.1) == is_misplaced(2, 0.1, 1, 0.9)


class TestLocalSequences:
    def test_indices_follow_sort_orders(self):
        items = [(1, 50.0, 0.85), (2, 120.0, 0.10), (3, 25.0, 0.35)]
        l_alpha, l_rho = local_sequences(items)
        assert l_alpha == {3: 0, 1: 1, 2: 2}
        assert l_rho == {2: 0, 3: 1, 1: 2}

    def test_ties_broken_by_id(self):
        items = [(2, 1.0, 0.5), (1, 1.0, 0.5)]
        l_alpha, l_rho = local_sequences(items)
        assert l_alpha == {1: 0, 2: 1}
        assert l_rho == {1: 0, 2: 1}


class TestLocalDisorder:
    def test_zero_when_ordered(self):
        items = [(1, 1.0, 0.1), (2, 2.0, 0.2), (3, 3.0, 0.3)]
        assert local_disorder(items) == 0.0

    def test_positive_when_disordered(self):
        items = [(1, 1.0, 0.9), (2, 2.0, 0.2), (3, 3.0, 0.3)]
        assert local_disorder(items) > 0.0

    def test_empty(self):
        assert local_disorder([]) == 0.0

    def test_swap_of_extremes_maximal(self):
        base = [(i, float(i), i / 10) for i in range(1, 6)]
        swapped = list(base)
        swapped[0] = (1, 1.0, 0.5)
        swapped[4] = (5, 5.0, 0.1)
        adjacent = list(base)
        adjacent[0] = (1, 1.0, 0.2)
        adjacent[1] = (2, 2.0, 0.1)
        assert local_disorder(swapped) > local_disorder(adjacent)


class TestGain:
    def test_selection_score_agrees_with_exact_gain(self):
        # Maximizing the Equation-2 score over candidates must select
        # the same neighbor as maximizing the exact Equation-1 gain.
        items = [(0, 5.0, 0.55), (1, 1.0, 0.9), (2, 9.0, 0.1), (3, 3.0, 0.6)]
        l_alpha, l_rho = local_sequences(items)
        candidates = [1, 2, 3]
        by_score = max(candidates, key=lambda j: pairwise_gain(l_alpha, l_rho, 0, j))
        by_exact = max(
            candidates, key=lambda j: exchange_gain(l_alpha, l_rho, 0, j, len(items))
        )
        assert by_score == by_exact

    def test_exact_gain_positive_for_misplaced_swap(self):
        items = [(0, 1.0, 0.9), (1, 2.0, 0.1)]
        l_alpha, l_rho = local_sequences(items)
        assert exchange_gain(l_alpha, l_rho, 0, 1, 2) > 0


class TestProtocolUnit:
    def _ctx_free_protocol(self, value, selection=SELECTION_MAX_GAIN):
        partition = SlicePartition.equal(4)
        protocol = OrderingProtocol(partition, selection, initial_value=value)
        protocol._update_slice()
        return protocol

    def test_initial_value_respected(self):
        protocol = self._ctx_free_protocol(0.3)
        assert protocol.value == 0.3
        assert protocol.rank_estimate == 0.3
        assert protocol.slice_index == 1

    def test_unknown_selection_rejected(self):
        with pytest.raises(ValueError):
            OrderingProtocol(SlicePartition.equal(2), selection="greedy")

    def test_initial_values_in_unit_interval(self):
        sim = make_ordering_sim(n=100)
        for node in sim.live_nodes():
            assert 0.0 < node.value <= 1.0


class TestSwapBehaviour:
    def test_two_node_swap(self):
        # A deterministic miniature: two nodes whose random values are
        # inverted relative to their attributes must swap exactly once.
        sim = make_ordering_sim(n=2, view_size=1, attributes=[1.0, 2.0])
        low, high = sorted(sim.live_nodes(), key=lambda node: node.attribute)
        low.slicer._value, high.slicer._value = 0.9, 0.2
        low.slicer._update_slice()
        high.slicer._update_slice()
        sim.run(2)
        assert low.value == 0.2
        assert high.value == 0.9

    def test_values_conserved_without_concurrency(self):
        sim = make_ordering_sim(n=80, concurrency="none")
        before = sorted(node.value for node in sim.live_nodes())
        sim.run(15)
        after = sorted(node.value for node in sim.live_nodes())
        assert before == pytest.approx(after)

    def test_gdm_converges_to_zero(self):
        sim = make_ordering_sim(n=80, view_size=10)
        sim.run(60)
        assert global_disorder(sim.live_nodes()) == 0.0

    def test_jk_also_converges(self):
        sim = make_ordering_sim(n=80, view_size=10, selection=SELECTION_RANDOM)
        sim.run(150)
        assert global_disorder(sim.live_nodes()) < 1.0

    def test_random_misplaced_converges(self):
        sim = make_ordering_sim(
            n=80, view_size=10, selection=SELECTION_RANDOM_MISPLACED
        )
        sim.run(80)
        assert global_disorder(sim.live_nodes()) < 1.0

    def test_modjk_faster_than_jk(self):
        disorder = {}
        for selection in (SELECTION_MAX_GAIN, SELECTION_RANDOM):
            sim = make_ordering_sim(n=150, view_size=10, selection=selection, seed=21)
            sim.run(12)
            disorder[selection] = global_disorder(sim.live_nodes())
        assert disorder[SELECTION_MAX_GAIN] < disorder[SELECTION_RANDOM]

    def test_converges_with_tied_attributes(self):
        # All-equal attributes: nothing is ever misplaced, values stay put.
        sim = make_ordering_sim(n=30, attributes=[5.0] * 30)
        before = {n.node_id: n.value for n in sim.live_nodes()}
        sim.run(10)
        after = {n.node_id: n.value for n in sim.live_nodes()}
        assert before == after


class TestSwapAccounting:
    def test_no_unsuccessful_swaps_when_atomic(self):
        sim = make_ordering_sim(n=80, concurrency="none")
        sim.run(20)
        assert sim.bus_stats.unsuccessful_swaps == 0
        assert sim.bus_stats.intended_swaps > 0

    def test_unsuccessful_swaps_under_full_concurrency(self):
        sim = make_ordering_sim(n=80, concurrency="full")
        sim.run(20)
        assert sim.bus_stats.unsuccessful_swaps > 0

    def test_full_concurrency_still_converges(self):
        sim = make_ordering_sim(n=80, view_size=10, concurrency="full")
        sim.run(80)
        assert global_disorder(sim.live_nodes()) < 5.0

    def test_jk_sends_even_without_misplaced_neighbor(self):
        # JK gossips with a random neighbor regardless of misplacement,
        # so REQ traffic continues even after convergence.
        sim = make_ordering_sim(n=30, selection=SELECTION_RANDOM)
        sim.run(100)
        sent_before = sim.bus_stats.per_kind.get("REQ", 0)
        sim.run(1)
        assert sim.bus_stats.per_kind["REQ"] > sent_before

    def test_modjk_goes_quiet_after_convergence(self):
        # mod-JK only messages misplaced neighbors: once sorted, silence.
        sim = make_ordering_sim(n=30, view_size=8)
        sim.run(120)
        assert global_disorder(sim.live_nodes()) == 0.0
        sent_before = sim.bus_stats.per_kind.get("REQ", 0)
        sim.run(3)
        assert sim.bus_stats.per_kind.get("REQ", 0) == sent_before
