"""Unit tests for slices and slice partitions."""

import pytest

from repro.core.slices import Slice, SlicePartition


class TestSlice:
    def test_contains_half_open(self):
        s = Slice(0.2, 0.4, 1)
        assert not s.contains(0.2)
        assert s.contains(0.3)
        assert s.contains(0.4)
        assert not s.contains(0.41)

    def test_width_and_midpoint(self):
        s = Slice(0.2, 0.6, 0)
        assert s.width == pytest.approx(0.4)
        assert s.midpoint == pytest.approx(0.4)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            Slice(0.5, 0.5, 0)
        with pytest.raises(ValueError):
            Slice(-0.1, 0.5, 0)
        with pytest.raises(ValueError):
            Slice(0.5, 1.1, 0)

    def test_equality_and_hash(self):
        assert Slice(0.0, 0.5, 0) == Slice(0.0, 0.5, 0)
        assert hash(Slice(0.0, 0.5, 0)) == hash(Slice(0.0, 0.5, 0))
        assert Slice(0.0, 0.5, 0) != Slice(0.5, 1.0, 1)


class TestEqualPartition:
    def test_count_and_bounds(self):
        partition = SlicePartition.equal(5)
        assert len(partition) == 5
        assert partition[0].lower == 0.0
        assert partition[4].upper == 1.0

    def test_slices_adjacent(self):
        partition = SlicePartition.equal(7)
        for left, right in zip(partition, list(partition)[1:]):
            assert left.upper == pytest.approx(right.lower)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            SlicePartition.equal(0)

    def test_single_slice(self):
        partition = SlicePartition.equal(1)
        assert partition.index_of(0.5) == 0
        assert partition.interior_boundaries == []


class TestFromBoundaries:
    def test_two_slices_80_20(self):
        # The paper's "20% best nodes" example.
        partition = SlicePartition.from_boundaries([0.8])
        assert len(partition) == 2
        assert partition.index_of(0.8) == 0
        assert partition.index_of(0.81) == 1

    def test_unsorted_input_ok(self):
        partition = SlicePartition.from_boundaries([0.7, 0.3])
        assert [s.upper for s in partition] == [0.3, 0.7, 1.0]

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SlicePartition.from_boundaries([0.0])
        with pytest.raises(ValueError):
            SlicePartition.from_boundaries([1.0])

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            SlicePartition.from_boundaries([0.5, 0.5])


class TestIndexOf:
    def test_interior_points(self):
        partition = SlicePartition.equal(10)
        assert partition.index_of(0.05) == 0
        assert partition.index_of(0.15) == 1
        assert partition.index_of(0.95) == 9

    def test_boundary_points_belong_below(self):
        # (l, u] intervals: an exact boundary belongs to the lower slice.
        partition = SlicePartition.equal(10)
        assert partition.index_of(0.1) == 0
        assert partition.index_of(0.2) == 1

    def test_clamping(self):
        partition = SlicePartition.equal(10)
        assert partition.index_of(0.0) == 0
        assert partition.index_of(-5.0) == 0
        assert partition.index_of(1.0) == 9
        assert partition.index_of(5.0) == 9

    def test_consistency_with_contains(self):
        partition = SlicePartition.equal(7)
        for i in range(1, 200):
            x = i / 200
            assert partition[partition.index_of(x)].contains(x)

    def test_slice_of_matches_index_of(self):
        partition = SlicePartition.equal(4)
        assert partition.slice_of(0.6).index == partition.index_of(0.6)


class TestBoundaryGeometry:
    def test_nearest_boundary(self):
        partition = SlicePartition.equal(4)
        assert partition.nearest_boundary(0.26) == pytest.approx(0.25)
        assert partition.nearest_boundary(0.49) == pytest.approx(0.5)
        assert partition.nearest_boundary(0.74) == pytest.approx(0.75)

    def test_boundary_distance(self):
        partition = SlicePartition.equal(4)
        assert partition.boundary_distance(0.3) == pytest.approx(0.05)
        assert partition.boundary_distance(0.25) == 0.0

    def test_boundary_distance_single_slice_uses_edges(self):
        partition = SlicePartition.equal(1)
        assert partition.boundary_distance(0.1) == pytest.approx(0.1)
        assert partition.boundary_distance(0.9) == pytest.approx(0.1)

    def test_slice_margin_includes_outer_edges(self):
        partition = SlicePartition.equal(4)
        # For 0.05 (first slice), the margin is min(0.05-0, 0.25-0.05).
        assert partition.slice_margin(0.05) == pytest.approx(0.05)
        assert partition.slice_margin(0.2) == pytest.approx(0.05)

    def test_slice_distance_equal_widths_is_index_gap(self):
        partition = SlicePartition.equal(10)
        assert partition.slice_distance(partition[1], partition[4]) == pytest.approx(3)
        assert partition.slice_distance(partition[4], partition[4]) == 0.0

    def test_slice_distance_unequal_widths_normalized(self):
        partition = SlicePartition.from_boundaries([0.8])
        # true slice (0, 0.8], believed (0.8, 1]: |0.4 - 0.9| / 0.8
        assert partition.slice_distance(partition[0], partition[1]) == pytest.approx(
            0.5 / 0.8
        )


class TestValidation:
    def test_rejects_gap(self):
        with pytest.raises(ValueError):
            SlicePartition([Slice(0.0, 0.4, 0), Slice(0.5, 1.0, 1)])

    def test_rejects_not_starting_at_zero(self):
        with pytest.raises(ValueError):
            SlicePartition([Slice(0.1, 1.0, 0)])

    def test_rejects_wrong_indices(self):
        with pytest.raises(ValueError):
            SlicePartition([Slice(0.0, 0.5, 0), Slice(0.5, 1.0, 5)])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SlicePartition([])
