#!/usr/bin/env python
"""Slicing a million-node system (the scale the paper could not reach).

The paper's evaluation stops at n = 10^4 because its cycle-based
simulator processes one object per node.  The vectorized backend turns
a protocol cycle into batched array passes, so this example runs the
*ranking* algorithm over 10^6 nodes — with the paper's correlated
churn live the whole time — and watches Theorem 5.1 at scale: the
fraction of nodes whose Wald confidence interval already fits inside
one slice, i.e. whose slice assignment is *provably* trustworthy, and
the time it takes that fraction to clear a target.

Run:  python examples/million_nodes.py            (10^6 nodes, ~3 min)
      python examples/million_nodes.py --n 100000 (smaller, ~20 s)
"""

import argparse
import time

from repro import RegularChurn, SlicingService


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=1_000_000, help="population size")
    parser.add_argument("--cycles", type=int, default=50, help="cycles to run")
    parser.add_argument(
        "--slices", type=int, default=10, help="equal slices to maintain"
    )
    parser.add_argument(
        "--target",
        type=float,
        default=0.4,
        help="confident fraction to report time-to-confidence for",
    )
    args = parser.parse_args()

    print(f"building a {args.n:,}-node slicing service (vectorized backend)...")
    started = time.perf_counter()
    service = SlicingService(
        size=args.n,
        slices=args.slices,
        algorithm="ranking",
        backend="vectorized",
        view_size=10,
        churn=RegularChurn(rate=0.001, period=10),  # paper's Fig 6(d) schedule
        seed=42,
    )
    print(f"  setup: {time.perf_counter() - started:.1f}s")

    print(
        f"\n{'cycle':>5}  {'SDM/n':>8}  {'accuracy':>8}  "
        f"{'confident':>9}  {'elapsed':>8}"
    )
    time_to_target = None
    started = time.perf_counter()
    while service.cycle < args.cycles:
        service.run(min(5, args.cycles - service.cycle))
        confident = service.confident_fraction()
        elapsed = time.perf_counter() - started
        print(
            f"{service.cycle:>5}  {service.disorder() / args.n:>8.3f}  "
            f"{service.accuracy():>8.1%}  {confident:>9.1%}  {elapsed:>7.1f}s"
        )
        if time_to_target is None and confident >= args.target:
            time_to_target = (service.cycle, elapsed)

    print()
    if time_to_target is not None:
        cycle, elapsed = time_to_target
        print(
            f"Theorem 5.1 at scale: {args.target:.0%} of {args.n:,} nodes held "
            f"a within-slice Wald interval by cycle {cycle} "
            f"({elapsed:.1f}s wall clock), under continuous correlated churn."
        )
    else:
        print(
            f"confident fraction reached {service.confident_fraction():.1%} "
            f"after {args.cycles} cycles (target {args.target:.0%} not yet hit; "
            "boundary nodes need the most samples — Theorem 5.1's d^-2 term)."
        )
    print(f"final slice sizes: {service.slice_sizes()}")


if __name__ == "__main__":
    main()
