#!/usr/bin/env python
"""Where does a cycle's time go?  Profile one ranking run at n = 10^5
on the three bulk backends and print the per-phase breakdown
side by side.

Each engine runs the *same* plan (bitwise-identical results — the
telemetry only times, it never touches an RNG stream), so the columns
differ purely in execution strategy:

* ``vectorized``  — single-process numpy;
* ``sharded``     — 2 worker processes over shared memory, with the
  driver/worker split visible as ``cmd:*`` dispatch spans plus
  per-worker attach/kernel/reply sub-spans and kernel vs barrier-wait
  accounting;
* ``distributed`` — 2 workers over the in-process loopback message
  transport, adding per-command wire-byte accounting.

The "serial spine" line names the span with the most *self* time —
the first target for any further optimization work — and the
per-worker straggler table shows how much of each worker's dispatched
time was busy vs idle.

Run:  python examples/profile_cycle.py
      python examples/profile_cycle.py --trace trace.json
      # then open trace.json in https://ui.perfetto.dev

``--trace`` records per-span timeline events for the sharded run and
writes them as Chrome/Perfetto trace-event JSON (one track per worker
plus the driver).
"""

import argparse

from repro.experiments.config import RunSpec, build_simulation
from repro.obs import CycleReport, Telemetry

N = 100_000
CYCLES = 5
BACKENDS = (
    ("vectorized", {}),
    ("sharded", {"workers": 2}),
    ("distributed", {"workers": 2}),
)


def profile(backend: str, timeline: bool = False, **overrides):
    spec = RunSpec(
        n=N,
        slice_count=10,
        view_size=10,
        protocol="ranking",
        backend=backend,
        seed=0,
        **overrides,
    )
    telemetry = Telemetry(engine=backend, timeline=timeline)
    sim = build_simulation(spec, telemetry=telemetry)
    try:
        sim.run(CYCLES)
    finally:
        if hasattr(sim, "close"):
            sim.close()
    return CycleReport(telemetry.records), telemetry


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--trace",
        default=None,
        metavar="OUT.json",
        help="write the sharded run's timeline as Perfetto trace JSON",
    )
    args = parser.parse_args()

    print(f"ranking, n={N:,}, {CYCLES} cycles — per-phase seconds\n")
    reports = {}
    telemetries = {}
    for backend, overrides in BACKENDS:
        print(f"profiling {backend} ...", flush=True)
        timeline = args.trace is not None and backend == "sharded"
        reports[backend], telemetries[backend] = profile(
            backend, timeline=timeline, **overrides
        )
    print()

    # Side-by-side top-level phase table.
    phases = []
    for report in reports.values():
        for name in report.phase_seconds():
            if name not in phases:
                phases.append(name)
    header = f"{'phase':<12}" + "".join(f"{b:>14}" for b in reports)
    print(header)
    print("-" * len(header))
    for phase in sorted(phases):
        row = f"{phase:<12}"
        for report in reports.values():
            seconds = report.phase_seconds().get(phase)
            row += f"{seconds:>14.3f}" if seconds is not None else f"{'-':>14}"
        print(row)
    row = f"{'wall':<12}"
    for report in reports.values():
        row += f"{report.wall_ns / 1e9:>14.3f}"
    print(row)
    row = f"{'coverage':<12}"
    for report in reports.values():
        row += f"{report.coverage * 100.0:>13.1f}%"
    print(row)

    print("\nserial spine (max self time) per backend:")
    for backend, report in reports.items():
        print(f"  {backend:>12}: {report.serial_spine()}")

    # The multi-process engines itemize their coordination costs.
    print("\ncoordination accounting:")
    for backend, report in reports.items():
        counters = report.counters
        if "worker_kernel_ns" not in counters:
            continue
        kernel = counters["worker_kernel_ns"] / 1e9
        wait = counters["barrier_wait_ns"] / 1e9
        line = (
            f"  {backend:>12}: worker kernel {kernel:.3f}s, "
            f"barrier wait {wait:.3f}s"
        )
        if "wire.sent_bytes" in counters:
            mb = (counters["wire.sent_bytes"] + counters["wire.recv_bytes"]) / 1e6
            line += f", wire {mb:.1f} MB in {counters['wire.frames']:.0f} frames"
        print(line)

    # Per-worker straggler table for the sharded run.  Each worker's
    # busy + wait sums over its share of every dispatch span, so
    # sum(busy) == worker_kernel_ns and sum(wait) == barrier_wait_ns
    # exactly (the PR-6 barrier identity, per worker).
    sharded = reports["sharded"]
    rows = sharded.worker_table()
    if rows:
        print("\nper-worker utilization (sharded):")
        print(f"  {'worker':<8} {'busy_s':>9} {'wait_s':>9} {'util%':>7}")
        for row in rows:
            print(
                f"  {'w' + row['worker']:<8} {row['busy_ns'] / 1e9:>9.3f} "
                f"{row['wait_ns'] / 1e9:>9.3f} "
                f"{row['utilization'] * 100.0:>7.1f}"
            )
        busy_sum = sum(row["busy_ns"] for row in rows)
        wait_sum = sum(row["wait_ns"] for row in rows)
        exact = (
            busy_sum == sharded.counters["worker_kernel_ns"]
            and wait_sum == sharded.counters["barrier_wait_ns"]
        )
        print(
            f"  identity: sum(busy) == worker_kernel_ns and "
            f"sum(wait) == barrier_wait_ns: {'exact' if exact else 'VIOLATED'}"
        )

    print("\nfull per-span report for the sharded run:\n")
    print(sharded.render())

    if args.trace is not None:
        from repro.obs import traceview

        count = traceview.write_trace(
            telemetries["sharded"].records, args.trace
        )
        print(
            f"\n[{count} trace events written to {args.trace}; "
            "open in https://ui.perfetto.dev]"
        )


if __name__ == "__main__":
    main()
