#!/usr/bin/env python
"""Resource allocation on a heterogeneous P2P platform.

The paper's motivating scenario: a service-oriented P2P platform must
hand the "best" 20% of peers (by bandwidth) to a video-streaming
application, the middle 30% to file distribution, and the rest to
background tasks.  Measured P2P bandwidths are heavy-tailed, so we
draw them from a Pareto distribution and use an *unequal* slice
partition — something absolute thresholds cannot do robustly because
the distribution is unknown to the operator.

Run:  python examples/bandwidth_allocation.py
"""

from repro import (
    CycleSimulation,
    ParetoAttributes,
    RankingProtocol,
    SlicePartition,
)
from repro.metrics.disorder import true_slice_indices

N = 1500
SEED = 11

APPLICATIONS = {
    0: "background tasks   (bottom 50%)",
    1: "file distribution  (middle 30%)",
    2: "video streaming    (top 20%)",
}


def main():
    # Slices: (0, 0.5], (0.5, 0.8], (0.8, 1.0].
    partition = SlicePartition.from_boundaries([0.5, 0.8])
    sim = CycleSimulation(
        size=N,
        partition=partition,
        slicer_factory=lambda: RankingProtocol(partition),
        attributes=ParetoAttributes(shape=1.3, scale=1.0),  # Mbps, heavy tail
        view_size=12,
        seed=SEED,
    )
    sim.run(150)

    truth = true_slice_indices(sim.live_nodes(), partition)
    print(f"{N} peers, Pareto(1.3) bandwidths, 3 unequal slices\n")
    for index, label in APPLICATIONS.items():
        members = [n for n in sim.live_nodes() if n.slice_index == index]
        correct = sum(1 for n in members if truth[n.node_id] == index)
        bandwidths = sorted(n.attribute for n in members)
        low = bandwidths[0] if bandwidths else float("nan")
        high = bandwidths[-1] if bandwidths else float("nan")
        print(
            f"{label}: {len(members):>4} peers "
            f"({100 * len(members) / N:4.1f}%), "
            f"bandwidth {low:8.1f} – {high:10.1f} Mbps, "
            f"{100 * correct / max(len(members), 1):5.1f}% correctly placed"
        )

    total_correct = sum(
        1 for n in sim.live_nodes() if n.slice_index == truth[n.node_id]
    )
    print(
        f"\noverall: {total_correct}/{N} peers "
        f"({100 * total_correct / N:.1f}%) self-assigned correctly after "
        "150 gossip cycles, with no central coordinator and no knowledge "
        "of the bandwidth distribution."
    )


if __name__ == "__main__":
    main()
