#!/usr/bin/env python
"""Slicing ten million nodes — three orders of magnitude past the paper.

The paper evaluates at n = 10^4; the vectorized backend (PR 1) reached
10^6 on one core.  This example runs the ranking algorithm over 10^7
nodes with the *sharded* backend: the node state lives in shared
memory, a worker pool executes every protocol phase over per-worker id
ranges, and the driver plans churn, random draws and exchange waves
centrally — so the run produces bitwise the same result as the
single-process backend, just on all cores.

The paper's correlated churn (lowest-attribute nodes leave, newcomers
join above the maximum — its hardest regime) stays live the whole run,
and the report tracks Theorem 5.1 at scale: the fraction of nodes
whose Wald interval already fits inside one slice.

Run:  python examples/ten_million_nodes.py                (~4 GB RAM)
      python examples/ten_million_nodes.py --n 1000000    (smaller)
      python examples/ten_million_nodes.py --workers 4
"""

import argparse
import time

from repro import RegularChurn, SlicingService


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--n", type=int, default=10_000_000, help="population size"
    )
    parser.add_argument("--cycles", type=int, default=30, help="cycles to run")
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes (default: all CPU cores)",
    )
    parser.add_argument(
        "--slices", type=int, default=10, help="equal slices to maintain"
    )
    args = parser.parse_args()

    print(
        f"building a {args.n:,}-node slicing service "
        f"(sharded backend, workers={args.workers or 'all cores'})..."
    )
    started = time.perf_counter()
    service = SlicingService(
        size=args.n,
        slices=args.slices,
        algorithm="ranking",
        backend="sharded",
        workers=args.workers,
        view_size=10,
        churn=RegularChurn(rate=0.001, period=10),  # paper's Fig 6(d) schedule
        seed=42,
    )
    print(f"  setup: {time.perf_counter() - started:.1f}s")

    print(
        f"\n{'cycle':>5}  {'SDM/n':>8}  {'accuracy':>8}  "
        f"{'confident':>9}  {'cyc/s':>6}  {'elapsed':>8}"
    )
    started = time.perf_counter()
    with service:
        while service.cycle < args.cycles:
            step = min(5, args.cycles - service.cycle)
            service.run(step)
            elapsed = time.perf_counter() - started
            print(
                f"{service.cycle:>5}  {service.disorder() / args.n:>8.3f}  "
                f"{service.accuracy():>8.1%}  "
                f"{service.confident_fraction():>9.1%}  "
                f"{service.cycle / elapsed:>6.2f}  {elapsed:>7.1f}s"
            )
        print(
            f"\n{args.n:,} nodes sliced under continuous correlated churn: "
            f"accuracy {service.accuracy():.1%} after {service.cycle} cycles "
            f"({service.cycle / (time.perf_counter() - started):.2f} "
            "cycles/sec wall clock)."
        )
        print(f"final slice sizes: {service.slice_sizes()}")


if __name__ == "__main__":
    main()
