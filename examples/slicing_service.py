#!/usr/bin/env python
"""The slicing service as P2P middleware.

The paper's introduction frames slicing as a *service*: a platform
declares application quotas once, peers self-organize, and the
platform reacts to slice-membership changes.  This example drives the
high-level :class:`repro.SlicingService` facade end to end:

* three applications with 60/30/10% quotas over a node "power" score;
* a subscription that logs peers migrating between applications;
* live joins of increasingly powerful peers, which displace borderline
  incumbents from the premium slice;
* convergence introspection via Theorem 5.1 confidence.

Run:  python examples/slicing_service.py
"""

from repro import ParetoAttributes, SlicingService

APPLICATIONS = ["batch compute (60%)", "content delivery (30%)", "live video (10%)"]


def main():
    service = SlicingService(
        size=600,
        slices=[0.6, 0.3, 0.1],
        algorithm="ranking",
        attributes=ParetoAttributes(shape=1.4),
        view_size=12,
        seed=19,
    )

    migrations = []
    service.subscribe(migrations.append)

    print("warming up (80 cycles)...")
    service.run(80)
    print(f"  accuracy            : {service.accuracy():.1%}")
    print(f"  SDM                 : {service.disorder():.0f}")
    print(f"  confident (Thm 5.1) : {service.confident_fraction():.1%}")
    print(f"  slice sizes         : {service.slice_sizes()}")

    print("\n10 powerful newcomers join...")
    migrations.clear()
    newcomer_ids = [service.join(attribute=10_000.0 + i) for i in range(10)]
    service.run(60)

    promoted = [i for i in newcomer_ids if service.slice_of(i) == 2]
    print(f"  newcomers now in 'live video': {len(promoted)}/10")
    demotions = [
        m for m in migrations if m.old_slice == 2 and m.new_slice == 1
        and m.node_id not in newcomer_ids
    ]
    print(
        f"  incumbents displaced from the premium slice: {len(demotions)} "
        "(each arrival shifts the 90% rank boundary)"
    )

    print("\nfinal allocation:")
    for index, label in enumerate(APPLICATIONS):
        print(f"  slice {index} -> {label:24}: {len(service.members(index)):>4} peers")
    print(f"\naccuracy after churn: {service.accuracy():.1%}")


if __name__ == "__main__":
    main()
