#!/usr/bin/env python
"""Distributed slicing over a real message transport — end to end.

The paper defines its gossip-based slicing for nodes spread across
machines; the ``distributed`` backend actually runs it that way.  This
example drives a multi-process run over **localhost TCP sockets**: the
driver plans every cycle centrally (churn, random draws, exchange
waves — one ``repro.bulk.CyclePlan``), ships each phase to the shard
workers as length-prefixed framed messages, and merges their replies —
wave-boundary sync, metric rank-merges and SDM count matrices all
travel over the wire.  Because the plan and the kernels are shared
with the other bulk backends, the run is *bitwise identical* to a
single-process ``backend="vectorized"`` run, which this example
verifies at the end.

To span real machines instead, start a worker on each host::

    python -m repro.distributed.worker --listen 0.0.0.0:7077

and point the service at them::

    SlicingService(..., backend="distributed",
                   hosts=["hostA:7077", "hostB:7077"])

Run:  python examples/distributed_localhost.py
      python examples/distributed_localhost.py --n 100000 --workers 4
"""

import argparse
import time

from repro import RegularChurn, SlicingService


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=20_000, help="population size")
    parser.add_argument("--cycles", type=int, default=20, help="cycles to run")
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="local TCP worker processes to spawn",
    )
    parser.add_argument(
        "--slices", type=int, default=10, help="equal slices to maintain"
    )
    args = parser.parse_args()

    spec = dict(
        size=args.n,
        slices=args.slices,
        algorithm="ranking",
        view_size=10,
        churn=RegularChurn(rate=0.001, period=10),  # paper's Fig 6(d) schedule
        seed=42,
    )

    print(
        f"building a {args.n:,}-node slicing service over localhost TCP "
        f"({args.workers} workers)..."
    )
    started = time.perf_counter()
    service = SlicingService(
        backend="distributed", workers=args.workers, **spec
    )
    print(f"  setup + worker handshake: {time.perf_counter() - started:.1f}s")

    print(f"running {args.cycles} cycles...")
    started = time.perf_counter()
    for checkpoint in range(0, args.cycles, max(args.cycles // 4, 1)):
        service.run(max(args.cycles // 4, 1))
        print(
            f"  cycle {service.cycle:>4d}: "
            f"SDM {service.disorder():10.1f}, "
            f"accuracy {100 * service.accuracy():5.1f}%, "
            f"confident {100 * service.confident_fraction():5.1f}%"
        )
    elapsed = time.perf_counter() - started
    print(f"  {service.cycle / elapsed:.2f} cycles/sec over the wire")

    print("verifying bitwise parity against the vectorized backend...")
    with SlicingService(backend="vectorized", **spec) as reference:
        reference.run(service.cycle)
        assert reference.disorder() == service.disorder()
        assert reference.accuracy() == service.accuracy()
        assert reference.slice_sizes() == service.slice_sizes()
    print(
        "  identical SDM/accuracy/slice sizes — same bits, different machines"
    )
    service.close()


if __name__ == "__main__":
    main()
