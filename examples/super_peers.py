#!/usr/bin/env python
"""Decentralized super-peer selection.

A classic consumer of a slicing service (discussed in the paper's
related work): promote exactly the top 5% most capable peers to
super-peer, with zero central knowledge.  Every node decides *locally*
from its own rank estimate, and the paper's Theorem 5.1 tells us which
nodes need the most evidence: the ones whose rank sits near the 95%
boundary.  We verify both the selection quality and the theorem's
sample-size prediction.

Run:  python examples/super_peers.py
"""

from repro import (
    CycleSimulation,
    ExponentialAttributes,
    RankingProtocol,
    SlicePartition,
)
from repro.analysis.sample_size import required_samples
from repro.metrics.disorder import true_slice_indices

N = 1200
SUPER_FRACTION = 0.05
SEED = 31


def main():
    partition = SlicePartition.from_boundaries([1.0 - SUPER_FRACTION])
    sim = CycleSimulation(
        size=N,
        partition=partition,
        slicer_factory=lambda: RankingProtocol(partition),
        attributes=ExponentialAttributes(mean=10.0),  # capability score
        view_size=12,
        seed=SEED,
    )
    sim.run(200)

    truth = true_slice_indices(sim.live_nodes(), partition)
    super_peers = [n for n in sim.live_nodes() if n.slice_index == 1]
    true_supers = {i for i, s in truth.items() if s == 1}
    correct = sum(1 for n in super_peers if n.node_id in true_supers)
    missed = len(true_supers) - correct

    print(f"{N} peers; target super-peer fraction {SUPER_FRACTION:.0%}\n")
    print(f"self-promoted super-peers : {len(super_peers)}")
    print(f"  of which truly top-5%   : {correct}")
    print(f"  truly-top peers missed  : {missed}")
    precision = correct / max(len(super_peers), 1)
    recall = correct / max(len(true_supers), 1)
    print(f"  precision / recall      : {precision:.2f} / {recall:.2f}")

    # Theorem 5.1: evidence needed at various ranks for 95% confidence.
    print("\nTheorem 5.1 — samples needed to decide 'am I a super-peer?'")
    boundary = 1.0 - SUPER_FRACTION
    for rank in (0.5, 0.9, 0.94, 0.949):
        margin = abs(rank - boundary)
        needed = required_samples(rank, margin, confidence=0.95)
        print(f"  rank {rank:.3f} (margin {margin:.3f}): ~{needed:8.0f} samples")
    mean_samples = sum(
        n.slicer.sample_count for n in sim.live_nodes()
    ) / sim.live_count
    print(
        f"\nafter 200 cycles each node has observed ~{mean_samples:.0f} "
        "samples, so only nodes essentially *on* the boundary can still "
        "be wrong — exactly the nodes the protocol's boundary bias feeds "
        "with extra updates."
    )


if __name__ == "__main__":
    main()
