#!/usr/bin/env python
"""Slicing by uptime under attribute-correlated churn (Section 5.3.3).

The hardest case in the paper: the attribute *is* session duration, so
churn is maximally correlated with it — short-lived nodes keep leaving
from the bottom of the order while newcomers keep extending the top.
The frozen random values of the ordering algorithm go stale; the
ranking algorithm re-estimates continuously, and its sliding-window
variant forgets pre-churn observations, tracking the drifting
population best.

Run:  python examples/churn_uptime.py
"""

from repro import (
    BurstChurn,
    CycleSimulation,
    OrderingProtocol,
    RankingProtocol,
    SliceDisorderCollector,
    SlicePartition,
)

N = 800
CYCLES = 300
BURST_END = 100
RATE = 0.005  # 0.5% leave + join per cycle during the burst
SLICES = 10
SEED = 23


def run(label):
    partition = SlicePartition.equal(SLICES)
    factories = {
        "ordering": lambda: OrderingProtocol(partition),
        "ranking": lambda: RankingProtocol(partition),
        "sliding-window": lambda: RankingProtocol(partition, window=2000),
    }
    sim = CycleSimulation(
        size=N,
        partition=partition,
        slicer_factory=factories[label],
        view_size=10,
        churn=BurstChurn(rate=RATE, start=0, end=BURST_END),
        seed=SEED,
    )
    collector = SliceDisorderCollector(partition, name=label, every=25)
    sim.run(CYCLES, collectors=[collector])
    return collector.series


def main():
    print(
        f"{N} nodes, attribute = uptime; churn burst of {RATE:.1%}/cycle "
        f"for the first {BURST_END} cycles (lowest-uptime nodes leave, "
        "newcomers outlive everyone)\n"
    )
    series = [run("ordering"), run("ranking"), run("sliding-window")]
    header = f"{'cycle':>6}  " + "  ".join(f"{s.name:>15}" for s in series)
    print(header)
    print("-" * len(header))
    for index, time in enumerate(series[0].times):
        marker = " <- churn stops" if time == BURST_END else ""
        print(
            f"{time:>6g}  "
            + "  ".join(f"{s.values[index]:>15.0f}" for s in series)
            + marker
        )
    print(
        "\nAfter the burst stops, ranking keeps converging while the "
        "ordering algorithm is stuck with stale random values "
        "(Figure 6(c)); the sliding window adapts fastest (Figure 6(d))."
    )


if __name__ == "__main__":
    main()
