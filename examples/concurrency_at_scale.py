#!/usr/bin/env python
"""Figure 4(c)/(d) at scale: message overlap beyond n = 10^4.

The paper's Section 4.5.2 artificially introduces *concurrency* — a
message may carry its sender's state at send time yet be applied only
after other exchanges of the cycle have run — and measures two things
for the ordering algorithms:

* Figure 4(c): the percentage of *unsuccessful swaps* (an intended
  exchange spoiled by a stale payload) under half and full overlap;
* Figure 4(d): how little full concurrency costs in convergence.

The paper stops at n = 10^4.  The bulk backends now run the same
overlap regimes in batched form (``repro.bulk.concurrency``): planned
per-message overlap masks split each exchange into a REQ phase and a
deferred-ACK phase, reproducing the reference engine's one-sided stale
swaps — so this study runs at 10^5..10^7 nodes.  Sharded output is
bitwise identical to vectorized at every worker count, concurrency
included.

Run:  python examples/concurrency_at_scale.py                (10^5 nodes)
      python examples/concurrency_at_scale.py --n 1000000    (10^6, slower)
      python examples/concurrency_at_scale.py --backend sharded --workers 8
"""

import argparse
import time

from repro.experiments.config import RunSpec, build_simulation
from repro.metrics.collectors import SliceDisorderCollector


def run_regime(base: RunSpec, concurrency):
    spec = base.with_overrides(concurrency=concurrency)
    sim = build_simulation(spec)
    collector = SliceDisorderCollector(spec.partition(), name=str(concurrency))
    started = time.perf_counter()
    sim.run(spec.cycles, collectors=[collector])
    elapsed = time.perf_counter() - started
    stats = sim.bus_stats
    unsuccessful_pct = 100.0 * stats.unsuccessful_swaps / max(stats.intended_swaps, 1)
    final_sdm = collector.series.final
    if hasattr(sim, "close"):
        sim.close()
    return unsuccessful_pct, final_sdm, elapsed


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--n", type=int, default=100_000, help="population size")
    parser.add_argument("--cycles", type=int, default=30, help="cycles per regime")
    parser.add_argument(
        "--backend", choices=["vectorized", "sharded"], default="vectorized"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for --backend sharded",
    )
    args = parser.parse_args()

    base = RunSpec(
        n=args.n,
        cycles=args.cycles,
        slice_count=10,
        view_size=20,
        protocol="mod-jk",
        backend=args.backend,
        workers=args.workers,
        seed=0,
    )
    print(
        f"mod-JK, n={args.n:,}, {args.cycles} cycles per regime "
        f"({args.backend} backend)\n"
    )
    print(f"{'concurrency':>12s} {'unsuccessful':>13s} {'final SDM':>12s} {'time':>8s}")
    baseline_sdm = None
    for concurrency in ("none", "half", "full"):
        unsuccessful_pct, final_sdm, elapsed = run_regime(base, concurrency)
        print(
            f"{concurrency:>12s} {unsuccessful_pct:>12.1f}% "
            f"{final_sdm:>12.0f} {elapsed:>7.1f}s"
        )
        if concurrency == "none":
            baseline_sdm = final_sdm
        elif concurrency == "full" and baseline_sdm:
            ratio = final_sdm / baseline_sdm
            print(
                f"\nfull-over-none final-SDM ratio: {ratio:.2f} "
                "(the paper: full concurrency costs only a small factor)"
            )


if __name__ == "__main__":
    main()
