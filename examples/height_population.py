#!/usr/bin/env python
"""Figure 1 of the paper: slicing a population by height.

Ten people with normally distributed heights (skewed toward 2 m in the
paper's drawing) are partitioned into two slices: the short half and
the tall half.  This illustrates why slices are defined by *rank*
proportion rather than by absolute thresholds — a threshold like
"taller than 1.65 m" could produce an empty or overfull group, while
slices are always balanced.

We run it at a slightly larger scale (100 people) so the gossip
protocol has something to do, then print the resulting groups.

Run:  python examples/height_population.py
"""


from repro import (
    CycleSimulation,
    NormalAttributes,
    RankingProtocol,
    SlicePartition,
)
from repro.metrics.disorder import true_slice_indices

N = 100
SEED = 7


def main():
    partition = SlicePartition.equal(2)  # short half, tall half
    sim = CycleSimulation(
        size=N,
        partition=partition,
        slicer_factory=lambda: RankingProtocol(partition),
        attributes=NormalAttributes(mu=1.72, sigma=0.12),  # heights in meters
        view_size=10,
        seed=SEED,
    )
    sim.run(80)

    truth = true_slice_indices(sim.live_nodes(), partition)
    names = {0: "short", 1: "tall"}
    correct = 0
    groups = {0: [], 1: []}
    for node in sim.live_nodes():
        believed = node.slice_index
        groups[believed].append(node.attribute)
        if believed == truth[node.node_id]:
            correct += 1

    print(f"Population of {N}, heights ~ N(1.72 m, 0.12 m)\n")
    for index in (0, 1):
        heights = sorted(groups[index])
        print(
            f"slice {index} ({names[index]:>5}): {len(heights):>3} members, "
            f"heights {heights[0]:.2f}-{heights[-1]:.2f} m"
        )
    print(f"\n{correct}/{N} nodes self-assigned to their correct slice.")

    # Contrast with an absolute threshold, as in the paper's discussion.
    threshold = 1.65
    short = sum(1 for node in sim.live_nodes() if node.attribute <= threshold)
    print(
        f"\nAn absolute threshold at {threshold} m would split the same "
        f"population {short} / {N - short} — unbalanced, and it would be "
        "empty for a population of basketball players."
    )


if __name__ == "__main__":
    main()
