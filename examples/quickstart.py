#!/usr/bin/env python
"""Quickstart: slice a 1000-node network into 10 groups by capacity.

Runs the paper's two algorithm families side by side on the same
population and shows the slice disorder measure (SDM) falling:

* the **ordering** algorithm (mod-JK) — fast, but floored by the
  spread of its random values;
* the **ranking** algorithm — slower start, keeps improving.

Run:  python examples/quickstart.py
"""

from repro import (
    CycleSimulation,
    OrderingProtocol,
    RankingProtocol,
    SliceDisorderCollector,
    SlicePartition,
)

N = 1000
CYCLES = 120
SLICES = 10
VIEW = 10
SEED = 42


def run(protocol_name):
    partition = SlicePartition.equal(SLICES)
    if protocol_name == "ordering (mod-JK)":
        factory = lambda: OrderingProtocol(partition)
    else:
        factory = lambda: RankingProtocol(partition)
    sim = CycleSimulation(
        size=N,
        partition=partition,
        slicer_factory=factory,
        view_size=VIEW,
        seed=SEED,
    )
    collector = SliceDisorderCollector(partition, name=protocol_name, every=10)
    sim.run(CYCLES, collectors=[collector])
    return collector.series


def main():
    print(f"Slicing {N} nodes into {SLICES} equal slices ({CYCLES} cycles)\n")
    series = [run("ordering (mod-JK)"), run("ranking")]
    header = f"{'cycle':>6}  " + "  ".join(f"{s.name:>18}" for s in series)
    print(header)
    print("-" * len(header))
    for index, time in enumerate(series[0].times):
        row = f"{time:>6g}  " + "  ".join(
            f"{s.values[index]:>18.0f}" for s in series
        )
        print(row)
    print(
        "\nSDM = summed distance between each node's true slice and the "
        "slice it believes it is in (0 = perfect).\n"
        "Note the ordering algorithm plateaus (random-value floor) while "
        "ranking keeps improving — Figure 6(a) of the paper."
    )


if __name__ == "__main__":
    main()
